//! The queued, admission-controlled serving front-end.
//!
//! [`super::SelectorEngine`] is batch-first: it is fastest when a request
//! carries many series, because the selector fan-out amortises one `tspar`
//! region over the whole batch. Real serving traffic is the opposite shape
//! — many small concurrent requests. [`ServeQueue`] bridges the two:
//!
//! * **Submission.** Callers [`ServeQueue::submit`] a
//!   [`super::SelectRequest`] and get a [`Ticket`] back immediately; the
//!   ticket's [`Ticket::wait`] blocks until the response is ready.
//! * **Coalescing.** A dedicated coalescer thread drains the bounded FIFO:
//!   it pops the front request, then keeps merging *consecutive* requests
//!   naming the same selector until [`QueueConfig::max_batch`] series are
//!   gathered, runs the merged batch through the engine once (one selector
//!   fan-out region on the `tspar` pool), and splits the results back per
//!   request. Merging only consecutive same-selector requests keeps
//!   completion in submission order. A single request larger than
//!   `max_batch` is never split — it just rides alone.
//! * **Admission control.** The queue holds at most
//!   [`QueueConfig::max_depth`] pending requests. A submit beyond that is
//!   rejected *immediately* with [`super::ServeError::Overloaded`] carrying
//!   the observed depth, so callers can shed load or back off instead of
//!   stacking unbounded latency. Once the coalescer drains below the bound,
//!   submits are accepted again — overload is a state, not a terminal
//!   condition.
//!
//! # Determinism
//!
//! Coalescing must not change answers. It cannot: per-series scores depend
//! only on the series (each series runs through the selector's
//! [`crate::selector::Selector::series_scores`] kernel independently, and
//! `tspar` partitioning never leaks into values), so a request's
//! [`super::Selection`]s are bit-identical whether it is served directly
//! via [`super::SelectorEngine::handle`], queued alone, or coalesced with
//! arbitrary neighbours, at any `KD_THREADS`. `tests/serve_queue.rs` sweeps
//! exactly that matrix.
//!
//! # Shutdown
//!
//! Dropping the [`ServeQueue`] stops admissions (late submits get
//! [`super::ServeError::ShuttingDown`]), drains every request already
//! admitted, completes their tickets, and joins the coalescer — tickets can
//! never be left dangling.

use super::{SelectRequest, Selection, SelectorEngine, ServeError};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for a [`ServeQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Admission bound: maximum pending (admitted, not yet served)
    /// requests. Submits beyond this are rejected with
    /// [`ServeError::Overloaded`].
    pub max_depth: usize,
    /// Coalescing bound: maximum series merged into one engine batch.
    /// `1` disables merging (every request rides alone).
    pub max_batch: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            max_depth: 1024,
            max_batch: 64,
        }
    }
}

/// One-shot completion slot shared between a [`Ticket`] and the coalescer.
struct Slot {
    result: Mutex<Option<Result<Vec<Selection>, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn complete(&self, result: Result<Vec<Selection>, ServeError>) {
        *self.result.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }
}

/// A handle to an admitted request: redeem it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request is served and returns its result: one
    /// [`Selection`] per submitted series, in request order — bit-identical
    /// to what [`SelectorEngine::handle`] returns for the same request.
    pub fn wait(self) -> Result<Vec<Selection>, ServeError> {
        let guard = self.slot.result.lock().unwrap();
        let mut guard = self.slot.ready.wait_while(guard, |r| r.is_none()).unwrap();
        guard.take().expect("slot completed exactly once")
    }

    /// Whether the response is ready (`wait` would not block).
    pub fn is_ready(&self) -> bool {
        self.slot.result.lock().unwrap().is_some()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// An admitted request waiting in the FIFO.
struct Pending {
    request: SelectRequest,
    slot: Arc<Slot>,
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    config: QueueConfig,
    state: Mutex<State>,
    /// Signalled on submit and on shutdown.
    work: Condvar,
}

/// The queued serving front-end: FIFO + admission control + coalescer
/// thread over a shared [`SelectorEngine`]. See the module docs.
///
/// `submit` takes `&self`; share the queue across producer threads behind a
/// reference or an `Arc`. The underlying engine stays reachable through
/// [`ServeQueue::engine`] — its registry is hot-swappable (`register` /
/// `load` via `&self`), so selectors can be replaced while the queue is
/// serving.
pub struct ServeQueue {
    engine: Arc<SelectorEngine>,
    shared: Arc<Shared>,
    coalescer: Option<JoinHandle<()>>,
}

impl ServeQueue {
    /// Starts a queue (and its coalescer thread) over `engine`.
    pub fn new(engine: Arc<SelectorEngine>, config: QueueConfig) -> Self {
        let shared = Arc::new(Shared {
            config: QueueConfig {
                max_depth: config.max_depth.max(1),
                max_batch: config.max_batch.max(1),
            },
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let coalescer = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kdsel-serve-coalescer".into())
                .spawn(move || coalescer_loop(&engine, &shared))
                .expect("spawn coalescer thread")
        };
        Self {
            engine,
            shared,
            coalescer: Some(coalescer),
        }
    }

    /// Starts a queue with [`QueueConfig::default`].
    pub fn with_default_config(engine: Arc<SelectorEngine>) -> Self {
        Self::new(engine, QueueConfig::default())
    }

    /// Admits a request, returning a [`Ticket`] redeemable for the
    /// response.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the FIFO already holds `max_depth`
    /// pending requests (the request is **not** admitted — retry after
    /// backing off); [`ServeError::ShuttingDown`] when the queue is being
    /// dropped. An unknown selector name is *not* checked here: it
    /// surfaces on the ticket, exactly as [`SelectorEngine::handle`] would
    /// report it.
    pub fn submit(&self, request: SelectRequest) -> Result<Ticket, ServeError> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = st.queue.len();
            if depth >= self.shared.config.max_depth {
                return Err(ServeError::Overloaded {
                    depth,
                    limit: self.shared.config.max_depth,
                });
            }
            st.queue.push_back(Pending {
                request,
                slot: Arc::clone(&slot),
            });
        }
        self.shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Convenience: submit and wait in one call (still goes through the
    /// FIFO and coalescer, so it can be merged with neighbours).
    pub fn serve(&self, request: SelectRequest) -> Result<Vec<Selection>, ServeError> {
        self.submit(request)?.wait()
    }

    /// Current number of pending (admitted, not yet claimed) requests.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The queue's configuration.
    pub fn config(&self) -> QueueConfig {
        self.shared.config
    }

    /// The engine behind the queue — use it to hot-swap selectors
    /// (`engine().register(..)`) while serving.
    pub fn engine(&self) -> &Arc<SelectorEngine> {
        &self.engine
    }
}

impl Drop for ServeQueue {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.coalescer.take() {
            // A panic on the coalescer thread has already completed the
            // affected tickets; nothing useful to do with the payload here.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ServeQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeQueue")
            .field("config", &self.shared.config)
            .field("depth", &self.depth())
            .field("engine", &self.engine)
            .finish()
    }
}

/// Coalescer: pop a group of consecutive same-selector requests (bounded
/// by `max_batch` series), serve it as one engine batch, complete tickets
/// in submission order; on shutdown, drain what was admitted, then exit.
fn coalescer_loop(engine: &SelectorEngine, shared: &Shared) {
    loop {
        let group = {
            let st = shared.state.lock().unwrap();
            let mut st = shared
                .work
                .wait_while(st, |s| s.queue.is_empty() && !s.shutdown)
                .unwrap();
            let Some(first) = st.queue.pop_front() else {
                debug_assert!(st.shutdown);
                return;
            };
            let mut total = first.request.batch.len();
            let mut group = vec![first];
            while let Some(next) = st.queue.front() {
                if next.request.selector != group[0].request.selector
                    || total + next.request.batch.len() > shared.config.max_batch
                {
                    break;
                }
                total += next.request.batch.len();
                group.push(st.queue.pop_front().expect("front just peeked"));
            }
            group
        };
        // The state lock is released here: producers keep submitting (and
        // the admission bound keeps measuring true backlog) while the
        // engine computes.
        serve_group(engine, group);
    }
}

fn serve_group(engine: &SelectorEngine, group: Vec<Pending>) {
    let selector = &group[0].request.selector;
    // Borrow, don't copy: the merged batch is a list of references into
    // the pending requests, which stay alive until their slots complete.
    let merged: Vec<&tsdata::TimeSeries> =
        group.iter().flat_map(|p| p.request.batch.iter()).collect();
    // A panicking selector must fail the group's tickets, not hang every
    // future submitter by killing the coalescer.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        engine.select_batch_refs(selector, &merged)
    }));
    match outcome {
        Ok(Ok(all)) => {
            // A selector that breaks the batch contract (one result per
            // series) must fail the whole group loudly — splitting a
            // short or long result vector would silently hand tickets
            // results belonging to other requests.
            if all.len() != merged.len() {
                let err = ServeError::MalformedOutput {
                    expected: merged.len(),
                    got: all.len(),
                };
                for pending in group {
                    pending.slot.complete(Err(err.clone()));
                }
                return;
            }
            let mut all = all.into_iter();
            for pending in group {
                let take = pending.request.batch.len();
                let part: Vec<Selection> = all.by_ref().take(take).collect();
                pending.slot.complete(Ok(part));
            }
        }
        Ok(Err(err)) => {
            // One selector name per group, so the error is the same for
            // every member (e.g. UnknownSelector).
            for pending in group {
                pending.slot.complete(Err(err.clone()));
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "selector panicked".into());
            for pending in group {
                pending
                    .slot
                    .complete(Err(ServeError::Panicked(msg.clone())));
            }
        }
    }
}
