//! The queued, admission-controlled serving front-end.
//!
//! [`super::SelectorEngine`] is batch-first: it is fastest when a request
//! carries many series, because the selector fan-out amortises one `tspar`
//! region over the whole batch. Real serving traffic is the opposite shape
//! — many small concurrent requests. [`ServeQueue`] bridges the two:
//!
//! * **Submission.** Callers [`ServeQueue::submit`] a
//!   [`super::SelectRequest`] and get a [`Ticket`] back immediately; the
//!   ticket's [`Ticket::wait`] blocks until the response is ready (or
//!   [`Ticket::wait_for`] bounds the wait with a deadline).
//! * **Coalescing.** A dedicated coalescer thread drains the bounded FIFO:
//!   it pops the front request, then keeps merging *consecutive* requests
//!   naming the same selector until [`QueueConfig::max_batch`] series are
//!   gathered, runs the merged batch through the engine once (one selector
//!   fan-out region on the `tspar` pool), and splits the results back per
//!   request. Merging only consecutive same-selector requests keeps
//!   completion in submission order. A single request larger than
//!   `max_batch` is never split — it just rides alone.
//! * **Admission control.** The queue holds at most
//!   [`QueueConfig::max_depth`] pending requests. A submit beyond that is
//!   rejected *immediately* with [`super::ServeError::Overloaded`] carrying
//!   the observed depth, so callers can shed load or back off instead of
//!   stacking unbounded latency. Once the coalescer drains below the bound,
//!   submits are accepted again — overload is a state, not a terminal
//!   condition.
//! * **Observability.** [`ServeQueue::stats`] exposes lifetime
//!   [`QueueStats`] counters (admitted / served / rejected / coalesced /
//!   panicked), and [`ServeQueue::heartbeat`] a monotonic liveness beat the
//!   supervision layer ([`super::router`]) uses to spot wedged workers.
//!
//! # Determinism
//!
//! Coalescing must not change answers. It cannot: per-series scores depend
//! only on the series (each series runs through the selector's
//! [`crate::selector::Selector::series_scores`] kernel independently, and
//! `tspar` partitioning never leaks into values), so a request's
//! [`super::Selection`]s are bit-identical whether it is served directly
//! via [`super::SelectorEngine::handle`], queued alone, or coalesced with
//! arbitrary neighbours, at any `KD_THREADS`. `tests/serve_queue.rs` sweeps
//! exactly that matrix.
//!
//! # Shutdown and worker death
//!
//! [`ServeQueue::shutdown`] (also run by `Drop`) is **idempotent**: it
//! stops admissions (late submits get [`super::ServeError::ShuttingDown`]),
//! drains every request already admitted, completes their tickets, and
//! joins the coalescer exactly once — calling it twice, from two threads,
//! or with submitters still holding tickets is safe and panic-free.
//!
//! Tickets can never be left dangling: every admitted request completes
//! exactly once. If the coalescer thread dies (a [`QueueHook`] panic
//! escaping the per-group `catch_unwind` — the fault-injection path a
//! supervisor uses to exercise worker death), the requests it had claimed
//! complete with [`super::ServeError::WorkerDied`] as they unwind, and
//! later submits are bounced with the same error instead of queueing work
//! nothing will serve. The supervision layer transplants the unclaimed
//! backlog onto a respawned worker.

use super::{SelectRequest, Selection, SelectorEngine, ServeError};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`ServeQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Admission bound: maximum pending (admitted, not yet served)
    /// requests. Submits beyond this are rejected with
    /// [`ServeError::Overloaded`].
    pub max_depth: usize,
    /// Coalescing bound: maximum series merged into one engine batch.
    /// `1` disables merging (every request rides alone).
    pub max_batch: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            max_depth: 1024,
            max_batch: 64,
        }
    }
}

/// Lifetime request counters for one [`ServeQueue`] worker, snapshot via
/// [`ServeQueue::stats`]. All counts are *requests* (not series):
///
/// * `admitted` — submits accepted into the FIFO.
/// * `served` — requests completed with a successful response.
/// * `rejected` — submits bounced at admission ([`ServeError::Overloaded`]
///   or an injected [`ServeError::Rejected`]); never enqueued.
/// * `coalesced` — requests served as part of a multi-request group (a
///   group of 3 counts 3; a request riding alone counts 0).
/// * `panicked` — requests failed by a panicking selector
///   ([`ServeError::Panicked`]) or by worker death
///   ([`ServeError::WorkerDied`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Submits accepted into the FIFO.
    pub admitted: u64,
    /// Requests completed with a successful response.
    pub served: u64,
    /// Submits bounced at admission (never enqueued).
    pub rejected: u64,
    /// Requests served as part of a multi-request coalesced group.
    pub coalesced: u64,
    /// Requests failed by selector panic or worker death.
    pub panicked: u64,
}

impl QueueStats {
    /// Field-wise sum — the supervision layer folds the counters of retired
    /// worker generations into the live one with this.
    pub fn merge(&self, other: &QueueStats) -> QueueStats {
        QueueStats {
            admitted: self.admitted + other.admitted,
            served: self.served + other.served,
            rejected: self.rejected + other.rejected,
            coalesced: self.coalesced + other.coalesced,
            panicked: self.panicked + other.panicked,
        }
    }
}

/// Shared atomic counters behind [`QueueStats`]. A separate leaf `Arc` (not
/// part of `Shared`) so each `Pending`'s drop-guard can record worker-death
/// failures without creating an `Arc` cycle through the queue state.
#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    coalesced: AtomicU64,
    panicked: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            // kdlint: allow(relaxed): stat snapshot — monotonic telemetry;
            // tests asserting exact values quiesce the queue first.
            admitted: self.admitted.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `admitted`.
            served: self.served.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `admitted`.
            rejected: self.rejected.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `admitted`.
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `admitted`.
            panicked: self.panicked.load(Ordering::Relaxed),
        }
    }
}

/// Interception points on a [`ServeQueue`] worker, for fault injection and
/// instrumentation. The default implementations do nothing; production
/// queues run without a hook installed (see [`ServeQueue::with_hook`]).
///
/// The contract mirrors where each method is called:
///
/// * [`QueueHook::on_submit`] runs inside `submit` after the shutdown
///   check; returning an error rejects the request at admission (it is
///   never enqueued).
/// * [`QueueHook::on_group`] runs on the worker thread after a coalesced
///   group is claimed, **outside** the panic guard around scoring — a
///   panic here escapes and kills the worker (the claimed requests fail
///   with [`ServeError::WorkerDied`], never hang), and a sleep here stalls
///   the worker's heartbeat. This is exactly the surface
///   [`super::fault::FaultPlan`] drives to exercise supervision.
pub trait QueueHook: Send + Sync {
    /// Admission interception: `Some(err)` rejects the submit.
    fn on_submit(&self, _selector: &str) -> Option<ServeError> {
        None
    }

    /// Worker-side interception before a claimed group is scored. May
    /// panic (worker death) or block (worker stall) by design.
    fn on_group(&self, _selector: &str) {}
}

/// One-shot completion slot shared between a [`Ticket`] and the coalescer.
struct SlotState {
    /// Set by the winning `complete` and never cleared. Completion must be
    /// remembered separately from `value`: the waiter consumes `value`, and
    /// if "completed" were inferred from `value.is_some()`, a drop-guard
    /// running after the waiter redeemed the ticket would see `None` and
    /// "win" a second completion on an already-served slot (miscounting it
    /// as a worker death).
    completed: bool,
    value: Option<Result<Vec<Selection>, ServeError>>,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    /// Completes the slot if nothing else has; returns whether this call
    /// won. Idempotence matters on the failure paths: a worker abandoned as
    /// wedged can finish its stalled group long after the supervision layer
    /// already failed (or re-served) the same tickets — first writer wins,
    /// every ticket still resolves exactly once.
    fn complete(&self, result: Result<Vec<Selection>, ServeError>) -> bool {
        let mut guard = self.state.lock().unwrap();
        if guard.completed {
            return false;
        }
        guard.completed = true;
        guard.value = Some(result);
        self.ready.notify_all();
        true
    }
}

/// A handle to an admitted request: redeem it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request is served and returns its result: one
    /// [`Selection`] per submitted series, in request order — bit-identical
    /// to what [`SelectorEngine::handle`] returns for the same request.
    pub fn wait(self) -> Result<Vec<Selection>, ServeError> {
        let guard = self.slot.state.lock().unwrap();
        // kdlint: allow(unbounded-wait): bounded by the queue totality
        // contract — every admitted slot completes exactly once (worker,
        // drain, or Pending drop-guard on worker death), so this wait
        // always ends; deadline-budgeted callers use `wait_for`.
        let mut guard = self.slot.ready.wait_while(guard, |s| !s.completed).unwrap();
        guard.value.take().expect("slot completed exactly once")
    }

    /// [`Ticket::wait`] with a deadline: returns the result if it arrives
    /// within `timeout`, otherwise hands the ticket back (`Err(self)`) so
    /// the caller can keep waiting, retry elsewhere, or walk away — the
    /// deadline-budgeted router path. An abandoned ticket is safe to drop;
    /// the response is discarded when it arrives.
    pub fn wait_for(self, timeout: Duration) -> Result<Result<Vec<Selection>, ServeError>, Ticket> {
        let guard = self.slot.state.lock().unwrap();
        let (mut guard, timed_out) = self
            .slot
            .ready
            .wait_timeout_while(guard, timeout, |s| !s.completed)
            .unwrap();
        if timed_out.timed_out() && !guard.completed {
            drop(guard);
            return Err(self);
        }
        Ok(guard.value.take().expect("slot completed exactly once"))
    }

    /// Whether the response is ready (`wait` would not block).
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().unwrap().completed
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// An admitted request waiting in the FIFO (or claimed by the worker).
///
/// The `Drop` impl is the no-hang guarantee: if a `Pending` is destroyed
/// without its slot completed — the worker thread unwinding with a claimed
/// group, or queue state dropped with a dead worker's backlog — the ticket
/// resolves to [`ServeError::WorkerDied`] instead of dangling.
pub(crate) struct Pending {
    request: SelectRequest,
    slot: Arc<Slot>,
    counters: Arc<Counters>,
}

impl Drop for Pending {
    fn drop(&mut self) {
        if self.slot.complete(Err(ServeError::WorkerDied)) {
            // kdlint: allow(relaxed): stat counter — snapshot-only reads.
            self.counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    config: QueueConfig,
    state: Mutex<State>,
    /// Signalled on submit and on shutdown.
    work: Condvar,
    counters: Arc<Counters>,
    hook: Option<Arc<dyn QueueHook>>,
    /// Worker liveness beat: bumped every time the coalescer claims a group
    /// and again when it finishes serving one. Stagnant beats while work is
    /// pending or in flight mean the worker is wedged.
    beats: AtomicU64,
    /// Whether the worker is currently inside a group (claimed, not yet
    /// completed) — distinguishes "idle, nothing to do" from "stuck".
    in_flight: AtomicBool,
}

/// The queued serving front-end: FIFO + admission control + coalescer
/// thread over a shared [`SelectorEngine`]. See the module docs.
///
/// `submit` takes `&self`; share the queue across producer threads behind a
/// reference or an `Arc`. The underlying engine stays reachable through
/// [`ServeQueue::engine`] — its registry is hot-swappable (`register` /
/// `load` via `&self`), so selectors can be replaced while the queue is
/// serving.
pub struct ServeQueue {
    engine: Arc<SelectorEngine>,
    shared: Arc<Shared>,
    coalescer: Mutex<Option<JoinHandle<()>>>,
}

impl ServeQueue {
    /// Starts a queue (and its coalescer thread) over `engine`.
    pub fn new(engine: Arc<SelectorEngine>, config: QueueConfig) -> Self {
        Self::build(engine, config, None)
    }

    /// Starts a queue whose worker consults `hook` at the [`QueueHook`]
    /// interception points — the fault-injection entry used by
    /// [`super::router`] and the test harnesses.
    pub fn with_hook(
        engine: Arc<SelectorEngine>,
        config: QueueConfig,
        hook: Arc<dyn QueueHook>,
    ) -> Self {
        Self::build(engine, config, Some(hook))
    }

    fn build(
        engine: Arc<SelectorEngine>,
        config: QueueConfig,
        hook: Option<Arc<dyn QueueHook>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            config: QueueConfig {
                max_depth: config.max_depth.max(1),
                max_batch: config.max_batch.max(1),
            },
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            counters: Arc::new(Counters::default()),
            hook,
            beats: AtomicU64::new(0),
            in_flight: AtomicBool::new(false),
        });
        let coalescer = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kdsel-serve-coalescer".into())
                .spawn(move || coalescer_loop(&engine, &shared))
                .expect("spawn coalescer thread")
        };
        Self {
            engine,
            shared,
            coalescer: Mutex::new(Some(coalescer)),
        }
    }

    /// Starts a queue with [`QueueConfig::default`].
    pub fn with_default_config(engine: Arc<SelectorEngine>) -> Self {
        Self::new(engine, QueueConfig::default())
    }

    /// Admits a request, returning a [`Ticket`] redeemable for the
    /// response.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the FIFO already holds `max_depth`
    /// pending requests (the request is **not** admitted — retry after
    /// backing off); [`ServeError::Rejected`] when an installed
    /// [`QueueHook`] refuses admission; [`ServeError::ShuttingDown`] when
    /// the queue is being shut down; [`ServeError::WorkerDied`] when the
    /// worker thread is gone (nothing would ever serve the request). An
    /// unknown selector name is *not* checked here: it surfaces on the
    /// ticket, exactly as [`SelectorEngine::handle`] would report it.
    // kdprof: hot
    pub fn submit(&self, request: SelectRequest) -> Result<Ticket, ServeError> {
        kdprof::span!(kdprof::Phase::Admit);
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                completed: false,
                value: None,
            }),
            ready: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if let Some(hook) = &self.shared.hook {
                if let Some(err) = hook.on_submit(&request.selector) {
                    self.shared
                        .counters
                        .rejected
                        // kdlint: allow(relaxed): stat counter — snapshot-only.
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
            }
            if !self.is_alive() {
                // A dead worker (hook panic escaped the group guard) can
                // never drain the FIFO; admitting would hang the ticket
                // until the supervision layer transplants the backlog.
                // Fail fast instead — the router retry path covers it.
                return Err(ServeError::WorkerDied);
            }
            let depth = st.queue.len();
            if depth >= self.shared.config.max_depth {
                self.shared
                    .counters
                    .rejected
                    // kdlint: allow(relaxed): stat counter — snapshot-only.
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth,
                    limit: self.shared.config.max_depth,
                });
            }
            self.shared
                .counters
                .admitted
                // kdlint: allow(relaxed): stat counter — snapshot-only; the
                // admission bound itself reads `st.queue.len()` under the
                // state lock, never this counter.
                .fetch_add(1, Ordering::Relaxed);
            kdprof::incr(kdprof::Counter::RequestsAdmitted, 1);
            st.queue.push_back(Pending {
                request,
                slot: Arc::clone(&slot),
                counters: Arc::clone(&self.shared.counters),
            });
        }
        self.shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Convenience: submit and wait in one call (still goes through the
    /// FIFO and coalescer, so it can be merged with neighbours).
    pub fn serve(&self, request: SelectRequest) -> Result<Vec<Selection>, ServeError> {
        // kdlint: allow(unbounded-wait): `Ticket::wait` — bounded by the
        // queue totality contract (see its annotation).
        self.submit(request)?.wait()
    }

    /// Current number of pending (admitted, not yet claimed) requests.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The queue's configuration.
    pub fn config(&self) -> QueueConfig {
        self.shared.config
    }

    /// Snapshot of the lifetime request counters.
    pub fn stats(&self) -> QueueStats {
        self.shared.counters.snapshot()
    }

    /// Monotonic worker liveness beat (see [`QueueStats`] docs): advances
    /// whenever the coalescer claims or completes a group. A supervisor
    /// that sees the beat stagnate while [`ServeQueue::has_work`] holds
    /// should treat the worker as wedged.
    pub fn heartbeat(&self) -> u64 {
        // Acquire pairs with the worker's Release bumps: a supervisor that
        // observes a beat also observes the group claim/completion behind
        // it — this is cross-thread control flow (wedge detection), not a
        // stat counter.
        self.shared.beats.load(Ordering::Acquire)
    }

    /// Whether the worker currently has anything to do: requests pending in
    /// the FIFO or a claimed group in flight. A stagnant heartbeat is only
    /// suspicious while this is `true`.
    pub fn has_work(&self) -> bool {
        // Acquire pairs with the worker's Release stores: supervisors
        // branch on this flag (a stagnant beat is only suspicious while
        // work is pending), so it must not be weaker than the beat.
        self.shared.in_flight.load(Ordering::Acquire) || self.depth() > 0
    }

    /// Whether the coalescer thread is still running. `false` after
    /// [`ServeQueue::shutdown`] — or, without a shutdown, when the worker
    /// died (a hook panic escaped the group guard).
    pub fn is_alive(&self) -> bool {
        self.coalescer
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|handle| !handle.is_finished())
    }

    /// The engine behind the queue — use it to hot-swap selectors
    /// (`engine().register(..)`) while serving.
    pub fn engine(&self) -> &Arc<SelectorEngine> {
        &self.engine
    }

    /// Stops admissions (late submits get [`ServeError::ShuttingDown`]),
    /// drains every admitted request, and joins the worker. **Idempotent
    /// and panic-free**: safe to call repeatedly, concurrently, from `Drop`,
    /// and with submitters still holding unredeemed tickets (their tickets
    /// complete during the drain). Joining a worker that died keeps the
    /// drain guarantee a different way: the undrained backlog completes
    /// with [`ServeError::WorkerDied`] when the queue state drops.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handle = self.coalescer.lock().unwrap().take();
        if let Some(handle) = handle {
            // A panic on the coalescer thread has already completed the
            // affected tickets (Pending drop-guards); nothing useful to do
            // with the payload here.
            // kdlint: allow(unbounded-wait): bounded by the drain — the
            // shutdown flag is already set, so the worker exits after at
            // most the admitted backlog; wedged workers are handled by the
            // supervision layer via `begin_shutdown`, which never joins.
            let _ = handle.join();
        }
    }

    /// Flips the shutdown flag and wakes the worker without joining it —
    /// the supervision layer uses this on a wedged worker it cannot join.
    pub(crate) fn begin_shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
    }

    /// Drops the worker's join handle without joining — detaches a wedged
    /// worker so a later [`ServeQueue::shutdown`] / `Drop` cannot block on
    /// a thread that may be stalled indefinitely. The detached thread still
    /// exits on its own once it unblocks (the shutdown flag is already
    /// set by the caller), completing any claimed tickets on the way out.
    pub(crate) fn detach_worker(&self) {
        let _ = self.coalescer.lock().unwrap().take();
    }

    /// Removes and returns every admitted-but-unclaimed request, in FIFO
    /// order. The supervision layer transplants this backlog onto a
    /// respawned worker via [`ServeQueue::resubmit`] so admitted work
    /// survives worker death.
    pub(crate) fn take_backlog(&self) -> Vec<Pending> {
        let mut st = self.shared.state.lock().unwrap();
        st.queue.drain(..).collect()
    }

    /// Re-enqueues a transplanted request, bypassing admission control (it
    /// was already admitted — and counted — by the queue it came from).
    pub(crate) fn resubmit(&self, pending: Pending) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.queue.push_back(pending);
        }
        self.shared.work.notify_one();
    }
}

impl Drop for ServeQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServeQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeQueue")
            .field("config", &self.shared.config)
            .field("depth", &self.depth())
            .field("alive", &self.is_alive())
            .field("stats", &self.stats())
            .field("engine", &self.engine)
            .finish()
    }
}

/// Coalescer: pop a group of consecutive same-selector requests (bounded
/// by `max_batch` series), serve it as one engine batch, complete tickets
/// in submission order; on shutdown, drain what was admitted, then exit.
fn coalescer_loop(engine: &SelectorEngine, shared: &Shared) {
    loop {
        let group = {
            let st = shared.state.lock().unwrap();
            let mut st = shared
                .work
                // kdlint: allow(unbounded-wait): idle worker parking —
                // every submit and shutdown notifies under the same mutex,
                // so the wait is bounded by the arrival of work or
                // shutdown, not by a timer.
                .wait_while(st, |s| s.queue.is_empty() && !s.shutdown)
                .unwrap();
            // Span opens *after* the idle park above, so Coalesce measures
            // group claiming, not time spent waiting for work.
            kdprof::span!(kdprof::Phase::Coalesce);
            let Some(first) = st.queue.pop_front() else {
                debug_assert!(st.shutdown);
                return;
            };
            let mut total = first.request.batch.len();
            let mut group = vec![first];
            while let Some(next) = st.queue.front() {
                if next.request.selector != group[0].request.selector
                    || total + next.request.batch.len() > shared.config.max_batch
                {
                    break;
                }
                total += next.request.batch.len();
                group.push(st.queue.pop_front().expect("front just peeked"));
            }
            group
        };
        // The state lock is released here: producers keep submitting (and
        // the admission bound keeps measuring true backlog) while the
        // engine computes.
        // Release pairs with the supervisor's Acquire loads in `heartbeat`
        // and `has_work`: wedge detection branches on these, so the claim
        // must be published before the beat that advertises it.
        shared.in_flight.store(true, Ordering::Release);
        shared.beats.fetch_add(1, Ordering::Release);
        if let Some(hook) = &shared.hook {
            // Deliberately outside the scoring panic guard: a panicking
            // hook kills the worker (the supervision fault path). The
            // claimed group's drop-guards fail its tickets on unwind.
            hook.on_group(&group[0].request.selector);
        }
        serve_group(engine, shared, group);
        // Release, as above: the completed group happens-before the beat
        // and the in-flight clear a supervisor may branch on.
        shared.beats.fetch_add(1, Ordering::Release);
        shared.in_flight.store(false, Ordering::Release);
    }
}

// kdprof: hot
fn serve_group(engine: &SelectorEngine, shared: &Shared, group: Vec<Pending>) {
    let selector = &group[0].request.selector;
    let counters = &shared.counters;
    kdprof::incr(kdprof::Counter::GroupsCoalesced, 1);
    if group.len() > 1 {
        counters
            .coalesced
            // kdlint: allow(relaxed): stat counter — snapshot-only.
            .fetch_add(group.len() as u64, Ordering::Relaxed);
    }
    // Borrow, don't copy: the merged batch is a list of references into
    // the pending requests, which stay alive until their slots complete.
    let merged: Vec<&tsdata::TimeSeries> =
        group.iter().flat_map(|p| p.request.batch.iter()).collect();
    // A panicking selector must fail the group's tickets, not hang every
    // future submitter by killing the coalescer.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        engine.select_batch_refs(selector, &merged)
    }));
    match outcome {
        Ok(Ok(all)) => {
            // A selector that breaks the batch contract (one result per
            // series) must fail the whole group loudly — splitting a
            // short or long result vector would silently hand tickets
            // results belonging to other requests.
            if all.len() != merged.len() {
                let err = ServeError::MalformedOutput {
                    expected: merged.len(),
                    got: all.len(),
                };
                for pending in group {
                    // kdlint: allow(hot-alloc): contract-violation fault
                    // path — a well-formed selector never reaches it.
                    pending.slot.complete(Err(err.clone()));
                }
                return;
            }
            kdprof::span!(kdprof::Phase::Complete);
            let mut all = all.into_iter();
            for pending in group {
                let take = pending.request.batch.len();
                let part: Vec<Selection> = all.by_ref().take(take).collect();
                if pending.slot.complete(Ok(part)) {
                    // kdlint: allow(relaxed): stat counter — snapshot-only.
                    counters.served.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(Err(err)) => {
            // One selector name per group, so the error is the same for
            // every member (e.g. UnknownSelector).
            for pending in group {
                // kdlint: allow(hot-alloc): error completion — cold by
                // definition; steady-state requests resolve `Ok`.
                pending.slot.complete(Err(err.clone()));
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "selector panicked".into());
            for pending in group {
                // kdlint: allow(hot-alloc): panic fault path — the group
                // is already lost; steady state never panics.
                let err = ServeError::Panicked(msg.clone());
                if pending.slot.complete(Err(err)) {
                    // kdlint: allow(relaxed): stat counter — snapshot-only.
                    counters.panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::Selector;
    use tsdata::TimeSeries;

    /// A selector whose vote is the series length mod 12 — cheap and
    /// deterministic, no NN forward pass.
    struct LenSelector;

    impl Selector for LenSelector {
        fn name(&self) -> &str {
            "len"
        }
        fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
            let mut row = vec![0.0f32; 12];
            row[ts.len() % 12] = 1.0;
            vec![row]
        }
    }

    fn len_engine() -> Arc<SelectorEngine> {
        let engine = SelectorEngine::new();
        engine.register("len", Arc::new(LenSelector));
        Arc::new(engine)
    }

    fn req(n: usize) -> SelectRequest {
        SelectRequest::new("len", vec![TimeSeries::new("s", "D", vec![0.0; n], vec![])])
    }

    /// Counters are bumped on the worker thread right after a ticket
    /// completes, so a waiter can observe the result a hair before the
    /// count: poll instead of asserting instantaneously.
    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..5000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn stats_count_admitted_served_rejected() {
        let queue = ServeQueue::new(len_engine(), QueueConfig::default());
        for i in 0..5 {
            queue.serve(req(10 + i)).expect("served");
        }
        wait_until("served count", || queue.stats().served == 5);
        let stats = queue.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.served, 5);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.panicked, 0);
    }

    #[test]
    fn a_redeemed_slot_stays_completed() {
        // Regression: completion used to be inferred from `value.is_some()`,
        // so once the waiter consumed the value, a late drop-guard
        // `complete(WorkerDied)` would "win" again and miscount a served
        // request as a worker death (flaking the stats tests above).
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                completed: false,
                value: None,
            }),
            ready: Condvar::new(),
        });
        assert!(slot.complete(Ok(vec![])));
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        // kdlint: allow(unbounded-wait): the slot is completed above, so
        // this returns without blocking.
        assert!(ticket.wait().is_ok());
        assert!(!slot.complete(Err(ServeError::WorkerDied)));
    }

    #[test]
    fn stats_count_panicked_requests() {
        struct Bomb;
        impl Selector for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn series_scores(&self, _ts: &TimeSeries) -> Vec<Vec<f32>> {
                panic!("bang")
            }
        }
        let engine = SelectorEngine::new();
        engine.register("bomb", Arc::new(Bomb));
        let queue = ServeQueue::new(Arc::new(engine), QueueConfig::default());
        std::panic::set_hook(Box::new(|_| {}));
        let err = queue
            .serve(SelectRequest::new(
                "bomb",
                vec![TimeSeries::new("s", "D", vec![0.0; 8], vec![])],
            ))
            .unwrap_err();
        let _ = std::panic::take_hook();
        assert!(matches!(err, ServeError::Panicked(_)));
        wait_until("panicked count", || queue.stats().panicked == 1);
        assert_eq!(queue.stats().served, 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_panic_free() {
        let queue = ServeQueue::new(len_engine(), QueueConfig::default());
        // Outstanding tickets at shutdown time: the drain completes them.
        let tickets: Vec<Ticket> = (0..4).map(|i| queue.submit(req(20 + i)).unwrap()).collect();
        queue.shutdown();
        queue.shutdown(); // double shutdown: no join panic, no deadlock
        for ticket in tickets {
            // kdlint: allow(unbounded-wait): shutdown above drained the
            // queue, so every slot is already complete.
            assert_eq!(ticket.wait().expect("drained").len(), 1);
        }
        // Admissions stay closed, idempotently.
        assert!(matches!(
            queue.submit(req(1)).unwrap_err(),
            ServeError::ShuttingDown
        ));
        assert!(!queue.is_alive());
        queue.shutdown(); // third time, after drop-path equivalent work
    }

    #[test]
    fn concurrent_shutdown_from_many_threads_is_safe() {
        let queue = Arc::new(ServeQueue::new(len_engine(), QueueConfig::default()));
        let tickets: Vec<Ticket> = (0..8).map(|i| queue.submit(req(i + 1)).unwrap()).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let queue = Arc::clone(&queue);
                s.spawn(move || queue.shutdown());
            }
        });
        for ticket in tickets {
            // kdlint: allow(unbounded-wait): the scope joined the shutdown
            // threads, so the drain already completed every slot.
            assert!(ticket.wait().is_ok(), "drained during concurrent shutdown");
        }
    }

    #[test]
    fn wait_for_times_out_and_returns_the_ticket() {
        struct Gate(Mutex<bool>, Condvar);
        impl Selector for Gate {
            fn name(&self) -> &str {
                "gate"
            }
            fn series_scores(&self, _ts: &TimeSeries) -> Vec<Vec<f32>> {
                let open = self.0.lock().unwrap();
                // kdlint: allow(unbounded-wait): test gate — the test body
                // opens it right after the bounded wait times out.
                drop(self.1.wait_while(open, |o| !*o).unwrap());
                vec![vec![1.0; 12]]
            }
        }
        let gate = Arc::new(Gate(Mutex::new(false), Condvar::new()));
        let engine = SelectorEngine::new();
        engine.register("gate", Arc::clone(&gate) as Arc<dyn Selector>);
        let queue = ServeQueue::new(Arc::new(engine), QueueConfig::default());
        let ticket = queue
            .submit(SelectRequest::new(
                "gate",
                vec![TimeSeries::new("s", "D", vec![0.0; 4], vec![])],
            ))
            .unwrap();
        // Gate closed: the bounded wait must give the ticket back.
        let ticket = ticket
            .wait_for(Duration::from_millis(20))
            .expect_err("must time out");
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        // Gate open: the same ticket now resolves.
        let got = ticket
            .wait_for(Duration::from_secs(5))
            .expect("resolves after release")
            .expect("served");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn hook_rejection_bounces_at_admission() {
        struct RejectOnce(AtomicU64);
        impl QueueHook for RejectOnce {
            fn on_submit(&self, _selector: &str) -> Option<ServeError> {
                // kdlint: allow(relaxed): RMW-unique claim — exactly one
                // caller observes 0; no data is published through it.
                if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    Some(ServeError::Rejected)
                } else {
                    None
                }
            }
        }
        let queue = ServeQueue::with_hook(
            len_engine(),
            QueueConfig::default(),
            Arc::new(RejectOnce(AtomicU64::new(0))),
        );
        assert!(matches!(
            queue.submit(req(5)).unwrap_err(),
            ServeError::Rejected
        ));
        assert_eq!(queue.serve(req(5)).expect("second admit").len(), 1);
        wait_until("served count", || queue.stats().served == 1);
        let stats = queue.stats();
        assert_eq!((stats.rejected, stats.admitted), (1, 1));
    }

    #[test]
    fn worker_death_fails_claimed_tickets_and_later_submits() {
        struct KillOnce(AtomicU64);
        impl QueueHook for KillOnce {
            fn on_group(&self, _selector: &str) {
                // kdlint: allow(relaxed): RMW-unique claim — exactly one
                // caller observes 0; no data is published through it.
                if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected worker death");
                }
            }
        }
        let queue = ServeQueue::with_hook(
            len_engine(),
            QueueConfig::default(),
            Arc::new(KillOnce(AtomicU64::new(0))),
        );
        std::panic::set_hook(Box::new(|_| {}));
        let err = queue.serve(req(3)).unwrap_err();
        let _ = std::panic::take_hook();
        assert!(matches!(err, ServeError::WorkerDied), "{err:?}");
        // The ticket resolves while the worker thread is still unwinding;
        // give the thread a beat to actually finish.
        wait_until("worker exit", || !queue.is_alive());
        wait_until("panicked count", || queue.stats().panicked == 1);
        // The queue refuses work nothing would serve, instead of hanging.
        assert!(matches!(
            queue.submit(req(4)).unwrap_err(),
            ServeError::WorkerDied
        ));
        queue.shutdown(); // dead-worker shutdown is still panic-free
    }

    #[test]
    fn heartbeat_advances_on_service() {
        let queue = ServeQueue::new(len_engine(), QueueConfig::default());
        let before = queue.heartbeat();
        queue.serve(req(9)).expect("served");
        wait_until("claim + completion beats", || {
            queue.heartbeat() >= before + 2
        });
        wait_until("idle", || !queue.has_work());
    }
}
