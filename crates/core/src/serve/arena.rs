//! Per-worker scratch arena for the serving hot path.
//!
//! Steady-state inference used to allocate per batch: window-value
//! buffers during extraction, the flat staging buffer behind the chunked
//! input tensor, and the logits tensor the classifier writes. The arena
//! pools all three **per thread** — the coalescer thread and each
//! [`tspar`] pool worker own one arena for the life of the process, so
//! after a warm-up pass the serving loop performs zero allocations in
//! the pooled paths ([`kdprof::Counter::ArenaGrowth`] pins this).
//!
//! # Determinism
//!
//! Pooling never changes results: every buffer is fully overwritten (or
//! `clear()`ed and re-extended) before use, and the arithmetic performed
//! on it is byte-for-byte the same as on a fresh allocation. The
//! `tests/serve_arena.rs` harness pins queued ≡ direct bitwise with the
//! arena on and off at `KD_THREADS ∈ {1, 4}`.
//!
//! # Toggling
//!
//! [`set_arena_enabled`] flips pooling at runtime (tests sweep both
//! states); `KD_NO_ARENA=1` in the environment disables it process-wide.
//! Disabled, [`with_arena`] hands out a fresh arena per call, which
//! degenerates to the old allocate-per-batch behaviour.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Reusable scratch buffers for one serving thread.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Recycled window-value buffers (window matrices / znorm scratch).
    window_bufs: Vec<Vec<f32>>,
    /// Flat staging for the chunked batch input tensor (recycled through
    /// `Tensor::into_data`).
    input: Vec<f32>,
    /// Flat staging for the classifier's logit rows.
    logits: Vec<f32>,
}

impl ScratchArena {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the input staging buffer, cleared but with its capacity.
    pub fn take_input(&mut self) -> Vec<f32> {
        Self::note(self.input.capacity());
        std::mem::take(&mut self.input)
    }

    /// Returns the input staging buffer for the next batch.
    pub fn put_input(&mut self, mut buf: Vec<f32>) {
        buf.clear();
        self.input = buf;
    }

    /// Takes the logits staging buffer, cleared but with its capacity.
    pub fn take_logits(&mut self) -> Vec<f32> {
        Self::note(self.logits.capacity());
        std::mem::take(&mut self.logits)
    }

    /// Returns the logits staging buffer for the next batch.
    pub fn put_logits(&mut self, mut buf: Vec<f32>) {
        buf.clear();
        self.logits = buf;
    }

    /// Takes a recycled window-value buffer (cleared), or a fresh one.
    pub fn take_window_buf(&mut self) -> Vec<f32> {
        match self.window_bufs.pop() {
            Some(mut b) => {
                Self::note(b.capacity());
                b.clear();
                b
            }
            None => {
                Self::note(0);
                Vec::new()
            }
        }
    }

    /// Returns window-value buffers for later extraction passes.
    pub fn put_window_bufs(&mut self, bufs: impl IntoIterator<Item = Vec<f32>>) {
        self.window_bufs.extend(bufs);
    }

    /// Growth accounting: a take with zero capacity will allocate.
    fn note(capacity: usize) {
        if capacity == 0 {
            kdprof::incr(kdprof::Counter::ArenaGrowth, 1);
        } else {
            kdprof::incr(kdprof::Counter::ArenaReuse, 1);
        }
    }
}

/// 0 = uninitialised (consult `KD_NO_ARENA`), 1 = enabled, 2 = disabled.
static ARENA_STATE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> u8 {
    let disabled = std::env::var("KD_NO_ARENA")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    if disabled {
        2
    } else {
        1
    }
}

/// Whether serving uses the per-thread arenas (default: on, unless
/// `KD_NO_ARENA=1`).
pub fn arena_enabled() -> bool {
    match ARENA_STATE.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => {
            let v = env_default();
            ARENA_STATE.store(v, Ordering::SeqCst);
            v == 1
        }
    }
}

/// Enables or disables arena pooling process-wide (tests sweep both
/// states to pin that pooling never changes results).
pub fn set_arena_enabled(enabled: bool) {
    ARENA_STATE.store(if enabled { 1 } else { 2 }, Ordering::SeqCst);
}

thread_local! {
    static ARENA: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Runs `f` with this thread's arena — or a throwaway one when pooling
/// is disabled, which reproduces the old allocate-per-batch behaviour
/// exactly.
pub fn with_arena<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    if arena_enabled() {
        ARENA.with(|a| f(&mut a.borrow_mut()))
    } else {
        f(&mut ScratchArena::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_take_put() {
        let mut a = ScratchArena::new();
        let mut b = a.take_input();
        b.extend_from_slice(&[1.0; 64]);
        a.put_input(b);
        let b = a.take_input();
        assert!(b.is_empty());
        assert!(b.capacity() >= 64, "capacity recycled");
    }

    #[test]
    fn window_bufs_recycle() {
        let mut a = ScratchArena::new();
        let mut w = a.take_window_buf();
        w.extend_from_slice(&[2.0; 32]);
        a.put_window_bufs([w]);
        let w = a.take_window_buf();
        assert!(w.is_empty());
        assert!(w.capacity() >= 32);
        // Pool drained: the next take is fresh.
        let w2 = a.take_window_buf();
        assert_eq!(w2.capacity(), 0);
    }

    #[test]
    fn toggle_is_respected() {
        set_arena_enabled(false);
        assert!(!arena_enabled());
        // Disabled: with_arena hands out empty arenas every call.
        with_arena(|a| {
            let mut b = a.take_input();
            b.push(1.0);
            a.put_input(b);
        });
        with_arena(|a| assert_eq!(a.take_input().capacity(), 0));
        set_arena_enabled(true);
        assert!(arena_enabled());
    }
}
