//! An LRU cache for per-series window extraction.
//!
//! Windowing a series (slice, tail-pad, z-normalise) is repeated work when
//! the same series shows up in request after request — a monitoring loop
//! re-submitting the same sensor stream hits the serving layer with
//! byte-identical payloads. [`WindowCache`] memoises the extracted window
//! matrix so repeat series skip re-windowing and z-normalisation entirely
//! and go straight to the NN forward pass.
//!
//! # Cache key
//!
//! An entry is keyed by **series content, not identity**:
//!
//! * a 64-bit word-wise FNV-1a hash over the raw `f64` bit patterns of
//!   [`TimeSeries::values`], plus the series length as an extra
//!   collision guard (non-cryptographic — see [`Key::new`]), and
//! * the full [`WindowConfig`] (`length`, `stride`, `znormalize`) — the
//!   same values windowed differently are different entries.
//!
//! The series `id` and `dataset` name are deliberately **not** part of the
//! key: two series with bit-equal values share one entry regardless of
//! what they are called, which is exactly right because window extraction
//! never reads either field. Anomaly labels are ignored for the same
//! reason (serving-path extraction is label-blind).
//!
//! # Determinism
//!
//! A hit returns the `Arc` of the vector the cold path produced, so the
//! hit path is bitwise-identical to re-extraction by construction —
//! `tests/serve_queue.rs` pins cached ≡ uncached end to end. Eviction is
//! least-recently-used on a monotonic touch counter under one mutex, so
//! capacity only affects *speed*, never results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tsdata::{TimeSeries, WindowConfig};

/// Cache key: content hash + extraction parameters (see the module docs).
/// `Ord` (not `Hash`) because the map is a `BTreeMap` — eviction scans in
/// key order, so victim selection is deterministic under ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    /// 64-bit word-wise FNV-1a over the `f64` bit patterns of the values.
    content: u64,
    /// Series length, as an extra collision guard.
    len: usize,
    window: usize,
    stride: usize,
    znormalize: bool,
}

impl Key {
    fn new(ts: &TimeSeries, cfg: &WindowConfig) -> Self {
        // Word-wise FNV-1a (shared kernel, see `crate::hash`): one 64-bit
        // xor-multiply per f64 instead of one per byte. Hashing is on the
        // hit path (every lookup pays it), so at serving-size series a
        // wider or byte-wise walk costs more than the re-windowing the
        // cache saves. 64 bits of content hash + the length guard makes
        // an accidental cross-content collision astronomically unlikely;
        // like any non-cryptographic cache key, it is not proof against
        // an adversary crafting colliding payloads.
        let mut h = crate::hash::FNV_OFFSET;
        for &v in &ts.values {
            crate::hash::fnv1a_mix(&mut h, v.to_bits());
        }
        Self {
            content: h,
            len: ts.len(),
            window: cfg.length,
            stride: cfg.stride,
            znormalize: cfg.znormalize,
        }
    }
}

struct Entry {
    /// Touch stamp from the cache's monotonic counter; smallest = coldest.
    last_used: u64,
    /// Payload bytes of `windows` (counted against the byte budget).
    bytes: usize,
    windows: Arc<Vec<Vec<f32>>>,
}

struct Inner {
    map: BTreeMap<Key, Entry>,
    tick: u64,
    /// Sum of `Entry::bytes` over the map (kept incrementally so the
    /// budget check is O(1), not a scan).
    bytes: usize,
}

/// Hit/miss/occupancy counters, for tests and operational visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache — including lookups that lost a
    /// same-key race and adopted the winner's entry at insert time (see
    /// [`WindowCache::get_or_insert`]), so `hits + misses` always equals
    /// the number of lookups.
    pub hits: u64,
    /// Lookups whose extraction was actually inserted.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Payload bytes currently held (window matrices only, not map
    /// overhead).
    pub bytes: usize,
}

/// A bounded, thread-safe LRU cache of extracted window matrices.
///
/// Shared via `Arc` between the selectors of one engine; every method takes
/// `&self`. See the module docs for the keying and determinism contract.
///
/// **Sizing:** capacity bounds the *entry count*; entry sizes vary wildly
/// with series length. One entry holds one series' window matrix ≈
/// `windows_per_series × window_length × 4` bytes (windows per series ≈
/// `series_len / stride`) — e.g. 1k-sample series at window 64 / stride 32
/// cost ~8 KB per entry, but a 10M-sample series costs ~80 MB, so an entry
/// count alone is no memory bound when series lengths are unbounded. Use
/// [`WindowCache::with_byte_budget`] to cap payload bytes alongside the
/// entry count: eviction then runs while *either* limit is exceeded, still
/// coldest-first, so the budget — like capacity — only affects speed,
/// never results. A single entry larger than the whole budget is still
/// admitted (the cache never holds fewer than one entry); it is evicted as
/// soon as a warmer insert displaces it.
pub struct WindowCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Optional payload-byte bound enforced alongside `capacity`.
    byte_budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WindowCache {
    /// New cache holding at most `capacity` window matrices (min 1), with
    /// no byte bound.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity: capacity.max(1),
            byte_budget: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// New cache bounded by *both* an entry count and a payload-byte
    /// budget (window matrices only; map/Arc overhead is not counted).
    /// Whenever either bound is exceeded, coldest entries are evicted
    /// first, deterministically (key order breaks LRU ties), down to a
    /// floor of one entry — so one oversized matrix still serves rather
    /// than thrash.
    pub fn with_byte_budget(capacity: usize, max_bytes: usize) -> Self {
        Self {
            byte_budget: Some(max_bytes),
            ..Self::new(capacity)
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured payload-byte budget, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Returns the cached window matrix for `(ts content, cfg)`, extracting
    /// via `build` on a miss. The build runs *outside* the cache lock so a
    /// long extraction never blocks hits on other series; if two threads
    /// race on the same cold key, the first insert wins and both callers
    /// share it (both builds produce bit-identical matrices, so the race
    /// can only cost time, never change results).
    ///
    /// **Stat accounting:** the miss is counted at *insert resolution*, not
    /// at lookup time. The racing loser finds the winner's entry when it
    /// returns to insert and is served from the cache, so it counts as a
    /// hit — `hits + misses` therefore always equals the lookup count, and
    /// `misses` equals the number of matrices actually inserted.
    pub fn get_or_insert(
        &self,
        ts: &TimeSeries,
        cfg: &WindowConfig,
        build: impl FnOnce() -> Vec<Vec<f32>>,
    ) -> Arc<Vec<Vec<f32>>> {
        let key = Key::new(ts, cfg);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                // kdlint: allow(relaxed): stat counter — read only by
                // `stats()` snapshots; nothing branches on it.
                self.hits.fetch_add(1, Ordering::Relaxed);
                kdprof::incr(kdprof::Counter::CacheHits, 1);
                return Arc::clone(&entry.windows);
            }
        }
        let built = Arc::new(build());
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            // Lost the cold-key race: another thread inserted while we were
            // building. This lookup is answered from the cache, so it is a
            // hit — counting it as a second miss would make `hits + misses`
            // overshoot the lookup count.
            entry.last_used = tick;
            // kdlint: allow(relaxed): stat counter — read only by
            // `stats()` snapshots; nothing branches on it.
            self.hits.fetch_add(1, Ordering::Relaxed);
            kdprof::incr(kdprof::Counter::CacheHits, 1);
            return Arc::clone(&entry.windows);
        }
        // kdlint: allow(relaxed): stat counter — read only by `stats()`
        // snapshots; nothing branches on it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        kdprof::incr(kdprof::Counter::CacheMisses, 1);
        let bytes: usize = built
            .iter()
            .map(|row| row.len() * std::mem::size_of::<f32>())
            .sum();
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                last_used: tick,
                bytes,
                windows: Arc::clone(&built),
            },
        );
        // Evict coldest-first while over the entry cap *or* the byte
        // budget, down to a floor of one entry (the just-inserted entry
        // carries the freshest tick, so it is never the victim while
        // anything colder remains). O(entries) scan per evict: serving
        // caches are tens-to-hundreds of entries, and eviction only runs
        // on insert of a new key, so the scan is noise next to the
        // extraction it just paid for.
        while inner.map.len() > 1
            && (inner.map.len() > self.capacity
                || self.byte_budget.is_some_and(|b| inner.bytes > b))
        {
            let coldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            if let Some(evicted) = inner.map.remove(&coldest) {
                inner.bytes -= evicted.bytes;
            }
        }
        built
    }

    /// Whether `(ts content, cfg)` currently has an entry (does not touch
    /// LRU order; test/introspection helper).
    pub fn contains(&self, ts: &TimeSeries, cfg: &WindowConfig) -> bool {
        let key = Key::new(ts, cfg);
        self.inner.lock().unwrap().map.contains_key(&key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            // kdlint: allow(relaxed): stat snapshot — approximate reads are
            // fine; tests that assert exact values quiesce first.
            hits: self.hits.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — same as above.
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }
}

impl std::fmt::Debug for WindowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WindowCache")
            .field("capacity", &self.capacity)
            .field("byte_budget", &self.byte_budget)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::extract_windows;

    fn cfg() -> WindowConfig {
        WindowConfig {
            length: 8,
            stride: 4,
            znormalize: true,
        }
    }

    fn series(id: &str, seed: usize, len: usize) -> TimeSeries {
        TimeSeries::new(
            id,
            "D",
            (0..len)
                .map(|t| ((t + seed * 31) as f64 * 0.3).sin())
                .collect(),
            vec![],
        )
    }

    fn windows_of(ts: &TimeSeries) -> Vec<Vec<f32>> {
        extract_windows(ts, 0, &cfg())
            .into_iter()
            .map(|w| w.values)
            .collect()
    }

    #[test]
    fn hit_path_returns_the_cold_result_bitwise() {
        let cache = WindowCache::new(4);
        let ts = series("a", 1, 40);
        let cold = cache.get_or_insert(&ts, &cfg(), || windows_of(&ts));
        let hit = cache.get_or_insert(&ts, &cfg(), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&cold, &hit), "hit must share the cold matrix");
        assert_eq!(*cold, windows_of(&ts), "cached matrix is the extraction");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn equal_content_different_names_share_an_entry() {
        // The key hashes values + window config only — id/dataset are not
        // inputs to extraction, so they must not split the cache.
        let cache = WindowCache::new(4);
        let a = series("sensor-A", 7, 40);
        let b = TimeSeries::new("sensor-B", "OTHER", a.values.clone(), vec![]);
        let wa = cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        let wb = cache.get_or_insert(&b, &cfg(), || panic!("same content must hit"));
        assert!(Arc::ptr_eq(&wa, &wb));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_window_config_is_a_different_entry() {
        let cache = WindowCache::new(4);
        let ts = series("a", 3, 40);
        let other = WindowConfig {
            length: 8,
            stride: 8,
            znormalize: true,
        };
        cache.get_or_insert(&ts, &cfg(), || windows_of(&ts));
        cache.get_or_insert(&ts, &other, Vec::new);
        assert_eq!(cache.len(), 2, "same series, two configs, two entries");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = WindowCache::new(2);
        let a = series("a", 1, 40);
        let b = series("b", 2, 40);
        let c = series("c", 3, 40);
        cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        cache.get_or_insert(&b, &cfg(), || windows_of(&b));
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        cache.get_or_insert(&a, &cfg(), || panic!("hit"));
        cache.get_or_insert(&c, &cfg(), || windows_of(&c));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.contains(&a, &cfg()),
            "recently-touched entry survives"
        );
        assert!(!cache.contains(&b, &cfg()), "coldest entry evicted");
        assert!(cache.contains(&c, &cfg()));
    }

    #[test]
    fn capacity_one_still_serves() {
        let cache = WindowCache::new(0); // clamped to 1
        assert_eq!(cache.capacity(), 1);
        let a = series("a", 1, 40);
        let b = series("b", 2, 40);
        let wa = cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        let wb = cache.get_or_insert(&b, &cfg(), || windows_of(&b));
        assert_eq!(*wa, windows_of(&a));
        assert_eq!(*wb, windows_of(&b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = WindowCache::new(4);
        let a = series("a", 1, 40);
        cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().bytes, 0, "clear resets the byte ledger");
    }

    /// One 40-sample series at window 8 / stride 4 yields 9 windows of 8
    /// f32s = 288 payload bytes per entry (the sizes the budget tests
    /// below are tuned around).
    const ENTRY_BYTES: usize = 9 * 8 * 4;

    #[test]
    fn byte_budget_evicts_coldest_until_under_budget() {
        // Two entries (576 B) fit a 600 B budget; a third (864 B) forces
        // the coldest out even though the entry cap (10) is nowhere near.
        let cache = WindowCache::with_byte_budget(10, 2 * ENTRY_BYTES + 24);
        assert_eq!(cache.byte_budget(), Some(600));
        let a = series("a", 1, 40);
        let b = series("b", 2, 40);
        let c = series("c", 3, 40);
        cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        cache.get_or_insert(&b, &cfg(), || windows_of(&b));
        assert_eq!(cache.stats().bytes, 2 * ENTRY_BYTES);
        cache.get_or_insert(&c, &cfg(), || windows_of(&c));
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(&a, &cfg()), "coldest entry paid the budget");
        assert!(cache.contains(&b, &cfg()));
        assert!(cache.contains(&c, &cfg()));
        assert_eq!(cache.stats().bytes, 2 * ENTRY_BYTES);
    }

    #[test]
    fn entry_larger_than_the_budget_is_still_admitted() {
        // The budget never evicts below one entry: a single oversized
        // matrix serves (and keeps serving hits) instead of thrashing.
        let cache = WindowCache::with_byte_budget(10, ENTRY_BYTES / 2);
        let a = series("a", 1, 40);
        let b = series("b", 2, 40);
        let wa = cache.get_or_insert(&a, &cfg(), || windows_of(&a));
        assert_eq!(*wa, windows_of(&a));
        assert_eq!(cache.len(), 1, "oversized sole entry is kept");
        let hit = cache.get_or_insert(&a, &cfg(), || panic!("must hit"));
        assert!(Arc::ptr_eq(&wa, &hit));
        cache.get_or_insert(&b, &cfg(), || windows_of(&b));
        assert_eq!(cache.len(), 1, "warmer insert displaces it");
        assert!(!cache.contains(&a, &cfg()));
        assert!(cache.contains(&b, &cfg()));
    }

    #[test]
    fn budget_eviction_only_costs_speed_not_results() {
        // Same lookups against a thrashing byte-budgeted cache and an
        // uncached extraction: bitwise-equal matrices throughout.
        let cache = WindowCache::with_byte_budget(10, ENTRY_BYTES);
        for round in 0..3 {
            for seed in 0..5 {
                let ts = series("s", seed, 40);
                let got = cache.get_or_insert(&ts, &cfg(), || windows_of(&ts));
                assert_eq!(*got, windows_of(&ts), "round {round} seed {seed}");
            }
        }
    }

    #[test]
    fn racing_cold_lookups_count_one_miss_and_one_hit() {
        // Regression: the miss used to be counted *before* the build, so
        // two threads racing one cold key both counted a miss and
        // `hits + misses` overshot the lookup count by one.
        use std::sync::Barrier;
        let cache = Arc::new(WindowCache::new(4));
        let ts = Arc::new(series("race", 5, 40));
        let barrier = Arc::new(Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let ts = Arc::clone(&ts);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    cache.get_or_insert(&ts, &cfg(), || {
                        // Both threads reach their build before either
                        // returns to insert, forcing the race every run.
                        // kdlint: allow(unbounded-wait): two-party test barrier; both threads reach it unconditionally.
                        barrier.wait();
                        windows_of(&ts)
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            // kdlint: allow(unbounded-wait): joining test threads that terminate after the barrier releases.
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        assert!(
            Arc::ptr_eq(&results[0], &results[1]),
            "the losing thread adopts the winner's entry"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one insert, one miss");
        assert_eq!(stats.hits, 1, "the losing lookup is a hit");
        assert_eq!(stats.hits + stats.misses, 2, "hits + misses == lookups");
        assert_eq!(stats.entries, 1);
    }
}
