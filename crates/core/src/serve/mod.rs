//! The selector serving layer: a thread-safe, hot-swappable registry of
//! named selectors answering batched selection requests, plus a queued
//! front-end for high-concurrency traffic.
//!
//! [`SelectorEngine`] is the process-level entry point a service wraps: it
//! owns `Arc<dyn Selector>`s (loadable from a [`SelectorStore`]), accepts a
//! [`SelectRequest`] carrying a *batch* of series, and answers with one
//! structured [`Selection`] per series — the chosen model plus the full
//! per-class vote tally and the vote margin, so callers can reason about
//! confidence, not just the argmax. The registry sits behind an `RwLock`:
//! [`SelectorEngine::register`] and [`SelectorEngine::load`] take `&self`,
//! so selectors can be **hot-swapped while serving threads are in flight**
//! (in-flight batches finish on the selector they resolved; the next
//! lookup sees the replacement).
//!
//! Two optional layers scale the serving path:
//!
//! * [`queue::ServeQueue`] — a bounded FIFO + coalescer thread that merges
//!   many small same-selector requests into one engine batch, with
//!   admission control ([`ServeError::Overloaded`]) for backpressure.
//! * [`cache::WindowCache`] — an LRU keyed by series *content* (not id)
//!   that lets repeated series skip re-windowing/z-normalisation; attach
//!   one with [`SelectorEngine::with_window_cache`].
//! * [`SelectionTap`] — an observer hook invoked after every served batch
//!   (margin taps for drift monitoring; install with
//!   [`SelectorEngine::set_selection_tap`]).
//! * [`router::ShardedRouter`] — the supervised sharded tier: selectors
//!   placed on N shard workers (each its own engine + queue) by consistent
//!   hashing, with worker supervision/respawn, per-request deadlines,
//!   bounded deterministic retries, per-(shard, selector) circuit breakers,
//!   and degraded-mode fallback ([`Selection::degraded`]). Failure paths
//!   are exercised deterministically through [`fault::FaultPlan`].
//!
//! # Determinism
//!
//! Batched serving runs each series through the selector's per-series
//! scoring kernel, fanned out over [`tspar`]'s fixed work partitions on
//! the persistent worker pool (so a high-QPS serving loop pays queue
//! dispatch per batch, not thread spawn/join). Partition boundaries depend
//! only on the batch size, never on the worker count or the execution
//! backend, and each series is scored independently — so a batch served at
//! `KD_THREADS=1` and at `KD_THREADS=64`, the same series selected one at
//! a time via [`Selector::select`], a request served directly via
//! [`SelectorEngine::handle`], or the same request coalesced with
//! arbitrary neighbours by a [`queue::ServeQueue`] all produce
//! bit-identical `Selection`s. The engine is `Send + Sync`; N threads
//! serving the same engine concurrently also agree exactly
//! (`tests/pool_determinism.rs` and `tests/serve_queue.rs` stress those
//! paths).
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use kdselector_core::manage::SelectorStore;
//! use kdselector_core::serve::{QueueConfig, SelectRequest, SelectorEngine, ServeQueue};
//! use tsdata::WindowConfig;
//!
//! let store = SelectorStore::open("selectors").unwrap();
//! let window = WindowConfig { length: 64, stride: 64, znormalize: true };
//! let engine = Arc::new(SelectorEngine::with_window_cache(256));
//! engine.load(&store, "resnet-kd", window).unwrap();
//!
//! // Direct batch path:
//! let request = SelectRequest::new("resnet-kd", vec![/* series */]);
//! for selection in engine.handle(&request).unwrap() {
//!     println!("{} (margin {:.2})", selection.model, selection.margin);
//! }
//!
//! // Queued front-end for many small concurrent requests:
//! let queue = ServeQueue::new(engine, QueueConfig::default());
//! let ticket = queue.submit(SelectRequest::new("resnet-kd", vec![])).unwrap();
//! let selections = ticket.wait().unwrap();
//! ```

pub mod arena;
pub mod cache;
pub mod fault;
pub mod policy;
pub mod queue;
pub mod router;
pub mod shard;

pub use arena::{arena_enabled, set_arena_enabled, ScratchArena};
pub use cache::{CacheStats, WindowCache};
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultPoint, FaultRule};
pub use policy::{Breaker, BreakerConfig, BreakerVerdict, RetryPolicy};
pub use queue::{QueueConfig, QueueHook, QueueStats, ServeQueue, Ticket};
pub use router::{
    HashRing, RouteError, RouteOptions, RouteReply, RouterConfig, RouterStats, ShardHealth,
    ShardedRouter,
};
pub use shard::SelectorSpec;

use crate::manage::SelectorStore;
use crate::selector::{argmax, majority_winner, vote_counts, NnSelector, Selector};
use crate::train::TrainedSelector;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use tsad_models::ModelId;
use tsdata::{TimeSeries, WindowConfig};

/// A batched selection request: which registered selector to use and the
/// series to select models for.
#[derive(Debug, Clone)]
pub struct SelectRequest {
    /// Name of a registered selector.
    pub selector: String,
    /// The batch of series to serve.
    pub batch: Vec<TimeSeries>,
}

impl SelectRequest {
    /// New request for `selector` over `batch`.
    pub fn new(selector: impl Into<String>, batch: Vec<TimeSeries>) -> Self {
        Self {
            selector: selector.into(),
            batch,
        }
    }
}

/// The structured result of selecting a model for one series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Selection {
    /// The chosen model (majority vote over windows, low-index tie-break).
    pub model: ModelId,
    /// Per-class vote counts in [`ModelId::ALL`] order.
    pub votes: Vec<usize>,
    /// Number of windows that voted.
    pub windows: usize,
    /// Vote margin: `(top count − runner-up count) / windows`, in `[0, 1]`.
    /// `0` for windowless series; `1` when every window agrees.
    pub margin: f64,
    /// `true` when the selection was served by a degraded-mode fallback
    /// selector (circuit breaker open, or no deadline budget left for the
    /// primary) rather than the selector the request named. Degraded
    /// answers are best-effort: callers that need the primary's answer
    /// should treat this flag as a retry-later signal.
    pub degraded: bool,
}

impl Selection {
    /// Derives a selection from one series' per-window class scores,
    /// through the same argmax and majority rule as [`Selector::select`].
    pub fn from_scores(scores: &[Vec<f32>]) -> Self {
        let n_classes = ModelId::ALL.len();
        let window_votes: Vec<usize> = scores.iter().map(|row| argmax(row)).collect();
        let votes = vote_counts(&window_votes, n_classes);
        let winner = majority_winner(&votes);
        // Top-2 counts in one pass (serving computes a margin per series,
        // so no clone-and-full-sort of the tally on the hot path).
        let (mut top, mut second) = (0usize, 0usize);
        for &count in &votes {
            if count > top {
                second = top;
                top = count;
            } else if count > second {
                second = count;
            }
        }
        let windows = scores.len();
        let margin = if windows == 0 {
            0.0
        } else {
            (top - second) as f64 / windows as f64
        };
        Self {
            model: ModelId::from_index(winner),
            votes,
            windows,
            margin,
            degraded: false,
        }
    }

    /// Marks the selection as served by a fallback selector (see
    /// [`Selection::degraded`]).
    pub fn into_degraded(mut self) -> Self {
        self.degraded = true;
        self
    }
}

/// Errors a serving call can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a selector that is not registered.
    UnknownSelector(String),
    /// A [`queue::ServeQueue`] refused admission: the FIFO already holds
    /// `limit` pending requests. The request was **not** enqueued.
    Overloaded {
        /// Pending requests at rejection time. Under the current strict
        /// admission rule the queue can never exceed its bound, so this
        /// always equals `limit` — carried separately so the signal stays
        /// meaningful if admission ever becomes soft (e.g. priority
        /// lanes).
        depth: usize,
        /// The queue's configured `max_depth`.
        limit: usize,
    },
    /// The queue is shutting down and no longer admits requests.
    ShuttingDown,
    /// The selector broke the batch contract: it returned a different
    /// number of per-series score sets than series submitted, so the
    /// coalescer could not split results back onto tickets without
    /// misassigning them. Affects every request in the coalesced group.
    MalformedOutput {
        /// Series in the coalesced batch.
        expected: usize,
        /// Score sets the selector returned.
        got: usize,
    },
    /// The selector panicked while serving the request (carries the
    /// panic message). The queue survives and keeps serving.
    Panicked(String),
    /// The worker thread serving the queue died (a panic escaped the
    /// per-group guard, e.g. through an injected [`queue::QueueHook`])
    /// before this request could be served, or would never serve it. The
    /// supervision layer respawns workers; retrying covers the window.
    WorkerDied,
    /// An installed [`queue::QueueHook`] refused admission (fault
    /// injection / custom admission policy). The request was **not**
    /// enqueued.
    Rejected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSelector(name) => {
                write!(f, "no selector registered under {name:?}")
            }
            ServeError::Overloaded { depth, limit } => {
                write!(
                    f,
                    "serve queue overloaded: {depth} pending requests (limit {limit})"
                )
            }
            ServeError::ShuttingDown => write!(f, "serve queue is shutting down"),
            ServeError::MalformedOutput { expected, got } => {
                write!(
                    f,
                    "selector returned {got} results for a batch of {expected} series"
                )
            }
            ServeError::Panicked(msg) => write!(f, "selector panicked while serving: {msg}"),
            ServeError::WorkerDied => {
                write!(f, "the serve queue's worker thread died before serving")
            }
            ServeError::Rejected => write!(f, "admission hook rejected the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// An observer of served [`Selection`]s, for operational monitoring.
///
/// Install one with [`SelectorEngine::set_selection_tap`]; every
/// [`SelectorEngine::select_batch`] / [`SelectorEngine::select_batch_refs`]
/// call invokes it *after* computing the batch's selections (the tap can
/// never change results, only watch them). The canonical consumer is a
/// drift monitor watching vote margins decay on a live selector — see
/// [`crate::stream::MarginDriftTap`].
///
/// Taps observe in the serving threads' call order: under concurrent
/// serving that order is scheduling-dependent, so a tap that needs a
/// *reproducible* observation stream must be driven single-threaded (the
/// [`crate::stream::RetrainDaemon`] instead scores windows on its own
/// ingest path, keeping its drift decisions replayable regardless of
/// serving concurrency). Implementations must be cheap or hand off
/// quickly: they run inside the serving call.
pub trait SelectionTap: Send + Sync {
    /// Called once per served batch with the selector's registered name
    /// and the selections just produced, in batch order.
    fn observe(&self, selector: &str, selections: &[Selection]);
}

/// A registry of named, immutable selectors serving batched requests.
///
/// Every method takes `&self` — registration (`register` / `load`) writes
/// through an internal `RwLock`, serving (`handle` / `select_batch`) takes
/// a read lock only to resolve the name, so a configured engine can be
/// shared across threads behind a plain reference or an `Arc`, and
/// selectors can be replaced (hot-swapped) while other threads serve.
#[derive(Default)]
pub struct SelectorEngine {
    registry: RwLock<BTreeMap<String, Arc<dyn Selector>>>,
    /// Shared window-extraction cache attached to selectors loaded via
    /// [`SelectorEngine::load`] (keyed by content + window config, so one
    /// cache safely serves every selector of the engine).
    window_cache: Option<Arc<WindowCache>>,
    /// Optional post-serve observer (margin taps; see [`SelectionTap`]).
    tap: RwLock<Option<Arc<dyn SelectionTap>>>,
}

impl SelectorEngine {
    /// New empty engine (no window cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty engine whose [`SelectorEngine::load`]ed selectors share an
    /// LRU [`WindowCache`] holding up to `capacity` window matrices.
    pub fn with_window_cache(capacity: usize) -> Self {
        Self {
            window_cache: Some(Arc::new(WindowCache::new(capacity))),
            ..Self::default()
        }
    }

    /// New empty engine sharing `cache` (e.g. a byte-budgeted
    /// [`WindowCache::with_byte_budget`], or a cache a
    /// [`crate::stream::StreamIngestor`] publishes streamed window
    /// matrices into so serving the streamed series never re-windows).
    pub fn with_shared_cache(cache: Arc<WindowCache>) -> Self {
        Self {
            window_cache: Some(cache),
            ..Self::default()
        }
    }

    /// Installs (`Some`) or removes (`None`) the engine's [`SelectionTap`].
    /// Takes `&self`: safe while other threads serve — in-flight batches
    /// finish under the tap they already resolved.
    pub fn set_selection_tap(&self, tap: Option<Arc<dyn SelectionTap>>) {
        *self.tap.write().unwrap() = tap;
    }

    fn tap_observe(&self, selector: &str, selections: &[Selection]) {
        // Clone the handle out of the lock so a slow tap never holds the
        // registry of observers against `set_selection_tap`.
        let tap = self.tap.read().unwrap().clone();
        if let Some(tap) = tap {
            tap.observe(selector, selections);
        }
    }

    /// The shared window cache, if one was configured (stats/introspection;
    /// pass clones to hand-built selectors via [`NnSelector::with_cache`]).
    pub fn window_cache(&self) -> Option<&Arc<WindowCache>> {
        self.window_cache.as_ref()
    }

    /// Registers a selector under `name`, replacing any previous entry.
    /// Takes `&self`: safe to call while other threads serve — in-flight
    /// batches finish on the selector they already resolved, the next
    /// request sees the replacement.
    ///
    /// Note that `register` takes the selector as-is and therefore does
    /// **not** attach the engine's window cache (it cannot reach inside an
    /// arbitrary `dyn Selector`): wire a hand-built [`NnSelector`] up with
    /// [`NnSelector::with_cache`] yourself, or go through
    /// [`SelectorEngine::load`], which attaches the cache automatically.
    pub fn register(&self, name: impl Into<String>, selector: Arc<dyn Selector>) {
        self.registry.write().unwrap().insert(name.into(), selector);
    }

    /// Removes a selector; returns it if it was registered.
    pub fn unregister(&self, name: &str) -> Option<Arc<dyn Selector>> {
        self.registry.write().unwrap().remove(name)
    }

    /// Loads a saved NN selector from `store` and registers it under its
    /// store name, attaching the engine's window cache if one is
    /// configured. Takes `&self` (see [`SelectorEngine::register`]).
    ///
    /// # Errors
    /// Besides store I/O failures, fails with `InvalidInput` when
    /// `window.length` disagrees with the window length the selector was
    /// trained with — catching the mismatch here instead of panicking in a
    /// serving thread on the first request.
    pub fn load(
        &self,
        store: &SelectorStore,
        name: &str,
        window: WindowConfig,
    ) -> std::io::Result<()> {
        self.deploy(name, store.load(name)?, window)
    }

    /// Deploys a freshly trained selector into the live registry: wraps it
    /// for serving (attaching the engine's window cache if one is
    /// configured, like [`SelectorEngine::load`]) and hot-swaps it under
    /// `name` while other threads keep serving — in-flight batches finish
    /// on the selector they already resolved, the next lookup sees the
    /// deployment. The typical call site is the end of a training session:
    ///
    /// ```no_run
    /// # use kdselector_core::serve::SelectorEngine;
    /// # use kdselector_core::train::TrainSession;
    /// # use tsdata::WindowConfig;
    /// # fn demo(engine: &SelectorEngine, session: TrainSession, window: WindowConfig) {
    /// let (model, _stats) = session.finish();
    /// engine.deploy("kdselector", model, window).unwrap();
    /// # }
    /// ```
    ///
    /// # Errors
    /// `InvalidInput` when `window.length` disagrees with the window
    /// length the selector was trained with — the same guard
    /// [`SelectorEngine::load`] applies, catching the mismatch at deploy
    /// time instead of panicking in a serving thread.
    pub fn deploy(
        &self,
        name: impl Into<String>,
        model: TrainedSelector,
        window: WindowConfig,
    ) -> std::io::Result<()> {
        let name = name.into();
        if model.window != window.length {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "selector {name:?} was trained with window length {}, \
                     but the serving WindowConfig has length {}",
                    model.window, window.length
                ),
            ));
        }
        let mut selector = NnSelector::new(name.clone(), model, window);
        if let Some(cache) = &self.window_cache {
            selector = selector.with_cache(Arc::clone(cache));
        }
        self.register(name, Arc::new(selector));
        Ok(())
    }

    /// The registered selector names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.registry.read().unwrap().keys().cloned().collect()
    }

    /// Looks up a registered selector (a clone of the shared handle, so the
    /// caller keeps serving on it even if the name is swapped afterwards).
    pub fn get(&self, name: &str) -> Option<Arc<dyn Selector>> {
        self.registry.read().unwrap().get(name).cloned()
    }

    /// Number of registered selectors.
    pub fn len(&self) -> usize {
        self.registry.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.read().unwrap().is_empty()
    }

    /// Serves a batched request: one [`Selection`] per series, in request
    /// order. Bit-identical to per-series [`Selector::select`] calls at any
    /// thread count.
    pub fn handle(&self, request: &SelectRequest) -> Result<Vec<Selection>, ServeError> {
        self.select_batch(&request.selector, &request.batch)
    }

    /// Serves a batch against the named selector. The registry read lock is
    /// held only for the name lookup, never during scoring — registration
    /// stays responsive while long batches compute.
    pub fn select_batch(
        &self,
        selector: &str,
        batch: &[TimeSeries],
    ) -> Result<Vec<Selection>, ServeError> {
        // Contiguous batches go through the trait's documented batch entry
        // point so a selector overriding `window_scores` keeps its
        // override on the direct serving path (the default implementations
        // of the two batch methods are consistent by construction — see
        // the `Selector` docs).
        let sel = self
            .get(selector)
            .ok_or_else(|| ServeError::UnknownSelector(selector.to_string()))?;
        let selections: Vec<Selection> = sel
            .window_scores(batch)
            .iter()
            .map(|scores| Selection::from_scores(scores))
            .collect();
        self.tap_observe(selector, &selections);
        Ok(selections)
    }

    /// [`SelectorEngine::select_batch`] over borrowed series — the path
    /// the [`queue::ServeQueue`] coalescer takes to serve several merged
    /// requests without copying their series into one contiguous batch.
    /// Bit-identical to `select_batch` on the same series in the same
    /// order (the fan-out partitions depend only on the count) for any
    /// selector that upholds the [`Selector`] batch-consistency contract.
    pub fn select_batch_refs(
        &self,
        selector: &str,
        batch: &[&TimeSeries],
    ) -> Result<Vec<Selection>, ServeError> {
        let sel = self
            .get(selector)
            .ok_or_else(|| ServeError::UnknownSelector(selector.to_string()))?;
        let selections: Vec<Selection> = sel
            .window_scores_refs(batch)
            .iter()
            .map(|scores| Selection::from_scores(scores))
            .collect();
        self.tap_observe(selector, &selections);
        Ok(selections)
    }
}

impl Clone for SelectorEngine {
    fn clone(&self) -> Self {
        Self {
            registry: RwLock::new(self.registry.read().unwrap().clone()),
            window_cache: self.window_cache.clone(),
            tap: RwLock::new(self.tap.read().unwrap().clone()),
        }
    }
}

impl std::fmt::Debug for SelectorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectorEngine")
            .field("selectors", &self.names())
            .field("window_cache", &self.window_cache)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::train::TrainedSelector;

    fn sine_series(id: usize, len: usize) -> TimeSeries {
        TimeSeries::new(
            format!("serve-{id}"),
            "D",
            (0..len)
                .map(|t| ((t + 7 * id) as f64 * 0.21).sin() + 0.01 * id as f64)
                .collect(),
            vec![],
        )
    }

    #[test]
    fn nan_scores_select_deterministically() {
        use crate::selector::argmax;
        // NaN never displaces an incumbent or wins a comparison: the
        // first finite maximum wins regardless of where the NaNs sit.
        assert_eq!(argmax(&[2.0, f32::NAN, 1.0]), 0);
        assert_eq!(argmax(&[f32::NAN, 1.0, 2.0]), 2);
        assert_eq!(argmax(&[1.0, f32::NAN, 2.0, f32::NAN]), 2);
        // Degenerate rows fall back to index 0, not an arbitrary winner.
        assert_eq!(argmax(&[f32::NAN, f32::NAN, f32::NAN]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]), 0);
        assert_eq!(argmax(&[]), 0);
        // Ties keep the lowest index.
        assert_eq!(argmax(&[3.0, 3.0, 1.0]), 0);

        // The same contract holds through Selection::from_scores: a row
        // poisoned by NaNs still votes first-wins, so the selection and
        // its vote tally are reproducible.
        let sel = Selection::from_scores(&[
            vec![2.0, f32::NAN, 1.0, 0.0],
            vec![f32::NAN; 4],
            vec![2.0, f32::NAN, 1.0, 0.0],
        ]);
        assert_eq!(sel.model, ModelId::from_index(0));
        assert_eq!(sel.votes[0], 3);
        assert_eq!(sel.windows, 3);
    }

    fn test_engine() -> SelectorEngine {
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 3);
        let engine = SelectorEngine::new();
        engine.register(
            "convnet",
            Arc::new(NnSelector::new("convnet", model, window)),
        );
        engine
    }

    #[test]
    fn selection_tap_observes_served_batches_without_changing_them() {
        use std::sync::Mutex;
        struct Recorder {
            seen: Mutex<Vec<(String, usize, f64)>>,
        }
        impl SelectionTap for Recorder {
            fn observe(&self, selector: &str, selections: &[Selection]) {
                let mut seen = self.seen.lock().unwrap();
                for s in selections {
                    seen.push((selector.to_string(), s.windows, s.margin));
                }
            }
        }

        let engine = test_engine();
        let batch: Vec<TimeSeries> = (0..3).map(|i| sine_series(i, 200)).collect();
        let untapped = engine.select_batch("convnet", &batch).unwrap();

        let tap = Arc::new(Recorder {
            seen: Mutex::new(Vec::new()),
        });
        engine.set_selection_tap(Some(Arc::clone(&tap) as Arc<dyn SelectionTap>));
        let tapped = engine.select_batch("convnet", &batch).unwrap();
        assert_eq!(tapped, untapped, "the tap must never change results");

        let seen = tap.seen.lock().unwrap().clone();
        assert_eq!(seen.len(), batch.len(), "one observation per series");
        for ((name, windows, margin), sel) in seen.iter().zip(&tapped) {
            assert_eq!(name, "convnet");
            assert_eq!(*windows, sel.windows);
            assert_eq!(*margin, sel.margin);
        }

        // Removing the tap stops observation; serving is unaffected.
        engine.set_selection_tap(None);
        let after = engine.select_batch("convnet", &batch).unwrap();
        assert_eq!(after, untapped);
        assert_eq!(tap.seen.lock().unwrap().len(), batch.len());
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let engine = test_engine();
        let err = engine.select_batch("ghost", &[]).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSelector(ref n) if n == "ghost"));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn registry_lists_replaces_and_unregisters() {
        let engine = test_engine();
        assert_eq!(engine.names(), vec!["convnet".to_string()]);
        assert_eq!(engine.len(), 1);
        assert!(!engine.is_empty());
        assert!(engine.get("convnet").is_some());
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 9);
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        engine.register("convnet", Arc::new(NnSelector::new("v2", model, window)));
        assert_eq!(engine.len(), 1, "same name replaces");
        assert_eq!(engine.get("convnet").unwrap().name(), "v2");
        let removed = engine.unregister("convnet").expect("was registered");
        assert_eq!(removed.name(), "v2");
        assert!(engine.is_empty());
        assert!(engine.unregister("convnet").is_none());
    }

    #[test]
    fn hot_swap_while_serving_keeps_in_flight_selector_alive() {
        let engine = test_engine();
        // A serving thread resolves the selector handle...
        let in_flight = engine.get("convnet").unwrap();
        // ...and a deployer swaps the name out from under it.
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 11);
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        engine.register("convnet", Arc::new(NnSelector::new("v2", model, window)));
        // The in-flight handle still works and still names the old version.
        assert_eq!(in_flight.name(), "convnet");
        let ts = sine_series(0, 96);
        assert!(!in_flight.series_scores(&ts).is_empty());
        assert_eq!(engine.get("convnet").unwrap().name(), "v2");
    }

    #[test]
    fn batched_selection_matches_per_series_select() {
        let engine = test_engine();
        let batch: Vec<TimeSeries> = (0..6).map(|i| sine_series(i, 200)).collect();
        let selections = engine.select_batch("convnet", &batch).unwrap();
        assert_eq!(selections.len(), 6);
        let sel = engine.get("convnet").unwrap();
        for (ts, selection) in batch.iter().zip(&selections) {
            assert_eq!(selection.model, sel.select(ts), "{}", ts.id);
            assert_eq!(selection.windows, sel.window_votes(ts).len());
            assert!(selection.windows > 0);
            assert_eq!(selection.votes.iter().sum::<usize>(), selection.windows);
            assert!((0.0..=1.0).contains(&selection.margin));
        }
    }

    #[test]
    fn handle_routes_requests() {
        let engine = test_engine();
        let request = SelectRequest::new("convnet", (0..3).map(|i| sine_series(i, 96)).collect());
        let selections = engine.handle(&request).unwrap();
        assert_eq!(selections.len(), 3);
    }

    #[test]
    fn selection_from_scores_votes_and_margin() {
        // 4 windows: classes 2, 2, 5, 2 → winner 2, margin (3-1)/4.
        let mk = |c: usize| {
            let mut row = vec![0.0f32; 12];
            row[c] = 1.0;
            row
        };
        let scores = vec![mk(2), mk(2), mk(5), mk(2)];
        let s = Selection::from_scores(&scores);
        assert_eq!(s.model, ModelId::from_index(2));
        assert_eq!(s.votes[2], 3);
        assert_eq!(s.votes[5], 1);
        assert_eq!(s.windows, 4);
        assert!((s.margin - 0.5).abs() < 1e-12);
    }

    /// Regression pins for the one-pass top-2 margin (the sort-based margin
    /// it replaced is the reference): tie, unanimous, windowless, and a
    /// split where top == second must subtract to zero.
    #[test]
    fn margin_pins_on_crafted_score_sets() {
        let mk = |c: usize| {
            let mut row = vec![0.0f32; 12];
            row[c] = 1.0;
            row
        };
        // Tie: 3 vs 3 → margin 0, winner is the lower index.
        let tie = Selection::from_scores(&[mk(1), mk(4), mk(1), mk(4), mk(1), mk(4)]);
        assert_eq!(tie.model, ModelId::from_index(1));
        assert_eq!(tie.margin, 0.0);
        // Unanimous: every window agrees → margin 1.
        let unanimous = Selection::from_scores(&[mk(7), mk(7), mk(7)]);
        assert_eq!(unanimous.model, ModelId::from_index(7));
        assert_eq!(unanimous.margin, 1.0);
        assert_eq!(unanimous.votes[7], 3);
        // Windowless: no votes → default model, margin 0.
        let empty = Selection::from_scores(&[]);
        assert_eq!(empty.model, ModelId::from_index(0));
        assert_eq!(empty.windows, 0);
        assert_eq!(empty.margin, 0.0);
        // Three-way 2/2/1 split over 5 windows → (2-2)/5 = 0.
        let split = Selection::from_scores(&[mk(3), mk(3), mk(9), mk(9), mk(0)]);
        assert_eq!(split.margin, 0.0);
        assert_eq!(split.model, ModelId::from_index(3));
        // Reference check against the replaced clone-and-sort computation.
        for scores in [
            vec![mk(2), mk(2), mk(5), mk(2)],
            vec![mk(1), mk(4), mk(1), mk(4), mk(1), mk(4)],
            vec![mk(7), mk(7), mk(7)],
            vec![mk(3), mk(3), mk(9), mk(9), mk(0)],
        ] {
            let s = Selection::from_scores(&scores);
            let mut sorted: Vec<usize> = s.votes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let reference = (sorted[0] - sorted[1]) as f64 / scores.len() as f64;
            assert_eq!(s.margin, reference, "one-pass top-2 must equal full sort");
        }
    }

    #[test]
    fn windowless_series_selects_default_with_zero_margin() {
        let s = Selection::from_scores(&[]);
        assert_eq!(s.model, ModelId::from_index(0));
        assert_eq!(s.windows, 0);
        assert_eq!(s.margin, 0.0);
    }

    #[test]
    fn load_rejects_mismatched_window_length() {
        let dir = std::env::temp_dir().join(format!("kdsel-serve-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SelectorStore::open(&dir).unwrap();
        let model = TrainedSelector::build(Architecture::ConvNet, 64, 4, 1);
        store.save("w64", &model, "").unwrap();

        let engine = SelectorEngine::new();
        let bad = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let err = engine.load(&store, "w64", bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(engine.is_empty(), "failed load must not register");

        let good = WindowConfig {
            length: 64,
            stride: 32,
            znormalize: true,
        };
        engine.load(&store, "w64", good).unwrap();
        assert_eq!(engine.names(), vec!["w64".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_attaches_the_engine_window_cache() {
        let dir = std::env::temp_dir().join(format!("kdsel-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SelectorStore::open(&dir).unwrap();
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 5);
        store.save("cached", &model, "").unwrap();

        let engine = SelectorEngine::with_window_cache(8);
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        engine.load(&store, "cached", window).unwrap();
        let cache = Arc::clone(engine.window_cache().expect("configured"));
        assert_eq!(cache.stats().misses, 0);

        let batch: Vec<TimeSeries> = (0..3).map(|i| sine_series(i, 128)).collect();
        let cold = engine.select_batch("cached", &batch).unwrap();
        assert_eq!(cache.stats().misses, 3, "each series extracted once");
        let warm = engine.select_batch("cached", &batch).unwrap();
        assert_eq!(cold, warm, "hit path must be bit-identical to cold path");
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().misses, 3, "no re-extraction on the hit path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn check<T: Send + Sync>(_: &T) {}
        check(&test_engine());
    }

    #[test]
    fn deploy_validates_window_and_hot_swaps() {
        let engine = test_engine();
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        // Window mismatch is rejected and leaves the registry untouched.
        let wrong = TrainedSelector::build(Architecture::ConvNet, 64, 4, 21);
        let err = engine.deploy("convnet", wrong, window).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(engine.get("convnet").unwrap().name(), "convnet");

        // A matching model replaces the live entry; in-flight handles
        // keep serving the old version.
        let in_flight = engine.get("convnet").unwrap();
        let fresh = TrainedSelector::build(Architecture::ConvNet, 32, 4, 23);
        let reference = {
            let probe = NnSelector::new(
                "probe",
                TrainedSelector::build(Architecture::ConvNet, 32, 4, 23),
                window,
            );
            probe.series_scores(&sine_series(1, 96))
        };
        engine.deploy("convnet", fresh, window).unwrap();
        assert_eq!(engine.len(), 1, "deploy replaces, never duplicates");
        let swapped = engine.get("convnet").unwrap();
        assert_eq!(
            swapped.series_scores(&sine_series(1, 96)),
            reference,
            "deployed selector serves the new weights"
        );
        let _ = in_flight.series_scores(&sine_series(0, 96));
    }

    #[test]
    fn deploy_attaches_the_engine_window_cache() {
        let engine = SelectorEngine::with_window_cache(4);
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 3);
        engine.deploy("cached", model, window).unwrap();
        let cache = Arc::clone(engine.window_cache().expect("configured"));
        let batch: Vec<TimeSeries> = (0..2).map(|i| sine_series(i, 128)).collect();
        engine.select_batch("cached", &batch).unwrap();
        assert_eq!(cache.stats().misses, 2);
        engine.select_batch("cached", &batch).unwrap();
        assert_eq!(cache.stats().hits, 2, "deployed selector uses the cache");
    }
}
