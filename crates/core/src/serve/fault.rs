//! Deterministic fault injection for the sharded serving tier.
//!
//! The robustness machinery in [`super::router`] — supervision, respawn,
//! retries, breakers, degraded fallback — only earns trust if its failure
//! paths are *testable*, and testable here means **deterministic**: given
//! a seed and a fault schedule, a replay run must be bitwise-identical to
//! the live run (the `tests/serve_queue.rs` contract, extended to
//! failures). Clock-based or probabilistic fault injection cannot deliver
//! that, so this module scripts faults by **occurrence count** instead:
//!
//! * A [`FaultRule`] matches an interception point ([`FaultPoint`]) plus
//!   optional shard / selector filters, carries a [`FaultAction`], and
//!   fires on a bounded number of matches ([`FaultRule::times`]). "Panic
//!   the first 2 groups selector `a` serves on shard 1" is exact no matter
//!   how requests interleave, coalesce, or which `KD_THREADS` runs them.
//! * A [`FaultPlan`] is an ordered rule list; the first live matching rule
//!   fires per event. Plans are `Send + Sync` and shared across shards.
//!
//! Faults enter the tier through two seams, both always compiled (no
//! test-only feature to drift out of sync with production code paths):
//!
//! * The queue hook ([`super::queue::QueueHook`]): [`FaultPoint::Submit`]
//!   rejections at admission, and [`FaultPoint::Group`] panics/stalls on
//!   the worker thread — a Group panic escapes the scoring guard and
//!   **kills the shard worker**, which is exactly how supervision and
//!   respawn are exercised.
//! * The selector wrapper ([`FaultySelector`]): [`FaultPoint::Score`]
//!   panics/stalls inside scoring, which the per-group guard catches —
//!   the shard survives, the group fails with
//!   [`super::ServeError::Panicked`].

use crate::selector::Selector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tsdata::TimeSeries;

/// What a firing fault does at its interception point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with the given message. At [`FaultPoint::Group`] this kills
    /// the shard worker (supervision territory); at [`FaultPoint::Score`]
    /// the group guard catches it (the shard survives).
    Panic(String),
    /// Sleep for the given duration before proceeding — a wedged worker
    /// ([`FaultPoint::Group`]) or a slow selector ([`FaultPoint::Score`])
    /// that blows deadline budgets.
    Stall(Duration),
    /// Refuse admission with [`super::ServeError::Rejected`]. Only
    /// meaningful at [`FaultPoint::Submit`]; ignored elsewhere.
    Reject,
}

/// Where in the request path a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Queue admission, before the request is enqueued.
    Submit,
    /// On the shard worker, after a coalesced group is claimed and before
    /// it is scored (outside the panic guard).
    Group,
    /// Inside the selector's per-series scoring kernel (inside the panic
    /// guard).
    Score,
}

/// One scripted fault: point + filters + action + occurrence budget.
#[derive(Debug)]
pub struct FaultRule {
    point: FaultPoint,
    shard: Option<usize>,
    selector: Option<String>,
    series: Option<String>,
    action: FaultAction,
    /// Remaining firings; `None` = unlimited.
    remaining: Option<AtomicU64>,
}

impl FaultRule {
    /// A rule firing `action` at `point`, unfiltered and unlimited until
    /// narrowed by the builder methods.
    pub fn at(point: FaultPoint, action: FaultAction) -> Self {
        Self {
            point,
            shard: None,
            selector: None,
            series: None,
            action,
            remaining: None,
        }
    }

    /// Restricts the rule to one shard index.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Restricts the rule to one selector name.
    pub fn on_selector(mut self, selector: impl Into<String>) -> Self {
        self.selector = Some(selector.into());
        self
    }

    /// Restricts a [`FaultPoint::Score`] rule to one series id.
    pub fn on_series(mut self, series_id: impl Into<String>) -> Self {
        self.series = Some(series_id.into());
        self
    }

    /// Bounds the rule to its first `n` matches — the knob that makes
    /// schedules replayable ("fail twice, then succeed").
    pub fn times(mut self, n: u64) -> Self {
        self.remaining = Some(AtomicU64::new(n));
        self
    }

    /// Whether the rule matches the event; consumes one occurrence when it
    /// does.
    fn fire(
        &self,
        point: FaultPoint,
        shard: usize,
        selector: &str,
        series: Option<&str>,
    ) -> Option<FaultAction> {
        if self.point != point {
            return None;
        }
        if self.shard.is_some_and(|s| s != shard) {
            return None;
        }
        if self.selector.as_deref().is_some_and(|s| s != selector) {
            return None;
        }
        if let Some(want) = self.series.as_deref() {
            if series != Some(want) {
                return None;
            }
        }
        if let Some(remaining) = &self.remaining {
            // Claim one occurrence atomically; concurrent matchers race for
            // the budget but never over-fire. AcqRel on the claim (Acquire
            // on the loads) so a thread that observes the budget exhausted
            // also observes every effect of the faults that drained it —
            // callers branch on this value, so it is control flow, not a
            // stat counter.
            let mut cur = remaining.load(Ordering::Acquire);
            loop {
                if cur == 0 {
                    return None;
                }
                match remaining.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        Some(self.action.clone())
    }
}

/// The interception interface the sharded tier consults. Implemented by
/// [`FaultPlan`]; a no-injector tier skips all of it.
pub trait FaultInjector: Send + Sync {
    /// Consulted at queue admission on `shard`; a returned action rejects
    /// or delays the submit.
    fn on_submit(&self, shard: usize, selector: &str) -> Option<FaultAction>;

    /// Consulted on the shard worker after a group is claimed; a returned
    /// `Panic` kills the worker.
    fn on_group(&self, shard: usize, selector: &str) -> Option<FaultAction>;

    /// Consulted inside scoring for each series; a returned `Panic` fails
    /// the group (the worker survives).
    fn on_score(&self, shard: usize, selector: &str, series: &TimeSeries) -> Option<FaultAction>;
}

/// An ordered fault schedule: for each event the first rule that matches
/// (and still has occurrence budget) fires.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule (builder-style).
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Appends a rule in place.
    pub fn push(&mut self, rule: FaultRule) {
        self.rules.push(rule);
    }

    fn first_firing(
        &self,
        point: FaultPoint,
        shard: usize,
        selector: &str,
        series: Option<&str>,
    ) -> Option<FaultAction> {
        self.rules
            .iter()
            .find_map(|rule| rule.fire(point, shard, selector, series))
    }
}

impl FaultInjector for FaultPlan {
    fn on_submit(&self, shard: usize, selector: &str) -> Option<FaultAction> {
        self.first_firing(FaultPoint::Submit, shard, selector, None)
    }

    fn on_group(&self, shard: usize, selector: &str) -> Option<FaultAction> {
        self.first_firing(FaultPoint::Group, shard, selector, None)
    }

    fn on_score(&self, shard: usize, selector: &str, series: &TimeSeries) -> Option<FaultAction> {
        self.first_firing(FaultPoint::Score, shard, selector, Some(&series.id))
    }
}

/// Executes a worker-side fault action (panics or sleeps). Shared by the
/// shard hook and [`FaultySelector`]; `Reject` is an admission-only action
/// and is ignored here.
pub(crate) fn run_action(action: FaultAction) {
    match action {
        FaultAction::Panic(msg) => panic!("{msg}"),
        FaultAction::Stall(d) => std::thread::sleep(d),
        FaultAction::Reject => {}
    }
}

/// A selector wrapper that consults a [`FaultInjector`] at
/// [`FaultPoint::Score`] before delegating to the wrapped selector — how a
/// shard's registered selectors become faulty without the engine, queue,
/// or scoring kernels knowing.
pub struct FaultySelector {
    inner: std::sync::Arc<dyn Selector>,
    injector: std::sync::Arc<dyn FaultInjector>,
    shard: usize,
    registered: String,
}

impl FaultySelector {
    /// Wraps `inner` (registered as `registered` on shard `shard`) with
    /// `injector`.
    pub fn new(
        inner: std::sync::Arc<dyn Selector>,
        injector: std::sync::Arc<dyn FaultInjector>,
        shard: usize,
        registered: impl Into<String>,
    ) -> Self {
        Self {
            inner,
            injector,
            shard,
            registered: registered.into(),
        }
    }
}

impl Selector for FaultySelector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn series_scores(&self, series: &TimeSeries) -> Vec<Vec<f32>> {
        if let Some(action) = self.injector.on_score(self.shard, &self.registered, series) {
            run_action(action);
        }
        self.inner.series_scores(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_filter_on_point_shard_selector_and_series() {
        let plan = FaultPlan::new().with(
            FaultRule::at(FaultPoint::Score, FaultAction::Reject)
                .on_shard(1)
                .on_selector("a")
                .on_series("s-3"),
        );
        let series = |id: &str| TimeSeries::new(id, "D", vec![0.0; 4], vec![]);
        assert!(plan.on_score(1, "a", &series("s-3")).is_some());
        assert!(plan.on_score(0, "a", &series("s-3")).is_none(), "shard");
        assert!(plan.on_score(1, "b", &series("s-3")).is_none(), "selector");
        assert!(plan.on_score(1, "a", &series("s-4")).is_none(), "series");
        assert!(plan.on_submit(1, "a").is_none(), "point");
        assert!(plan.on_group(1, "a").is_none(), "point");
    }

    #[test]
    fn occurrence_budget_bounds_firings_exactly() {
        let plan =
            FaultPlan::new().with(FaultRule::at(FaultPoint::Submit, FaultAction::Reject).times(2));
        assert!(plan.on_submit(0, "x").is_some());
        assert!(plan.on_submit(3, "y").is_some());
        assert!(plan.on_submit(0, "x").is_none(), "budget exhausted");
        assert!(plan.on_submit(0, "x").is_none());
    }

    #[test]
    fn first_matching_rule_wins_then_falls_through() {
        let plan = FaultPlan::new()
            .with(FaultRule::at(FaultPoint::Group, FaultAction::Panic("boom".into())).times(1))
            .with(FaultRule::at(
                FaultPoint::Group,
                FaultAction::Stall(Duration::from_millis(1)),
            ));
        assert_eq!(
            plan.on_group(0, "x"),
            Some(FaultAction::Panic("boom".into()))
        );
        // Rule 1 spent: rule 2 now matches, forever.
        assert_eq!(
            plan.on_group(0, "x"),
            Some(FaultAction::Stall(Duration::from_millis(1)))
        );
        assert_eq!(
            plan.on_group(5, "y"),
            Some(FaultAction::Stall(Duration::from_millis(1)))
        );
    }

    #[test]
    fn faulty_selector_panics_on_score_fault() {
        struct Flat;
        impl Selector for Flat {
            fn name(&self) -> &str {
                "flat"
            }
            fn series_scores(&self, _series: &TimeSeries) -> Vec<Vec<f32>> {
                vec![vec![1.0; 12]]
            }
        }
        let plan =
            std::sync::Arc::new(FaultPlan::new().with(
                FaultRule::at(FaultPoint::Score, FaultAction::Panic("scored".into())).times(1),
            ));
        let faulty = FaultySelector::new(std::sync::Arc::new(Flat), plan, 0, "flat");
        let series = TimeSeries::new("s", "D", vec![0.0; 4], vec![]);
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulty.series_scores(&series)
        }));
        let _ = std::panic::take_hook();
        assert!(result.is_err(), "first score panics");
        // Budget spent: the wrapper now delegates cleanly.
        assert_eq!(faulty.series_scores(&series).len(), 1);
        assert_eq!(faulty.name(), "flat");
    }
}
