//! One shard of the sharded serving tier: a private [`SelectorEngine`] +
//! [`ServeQueue`] pair, plus the bookkeeping that lets the supervisor
//! replace a dead or wedged worker without losing registered state or
//! admitted requests.
//!
//! The key idea is that a shard's *identity* is not its worker thread but
//! its **selector specs**: every selector registered on a shard is kept as
//! a re-creatable [`SelectorSpec`] (a store + window config for persisted
//! NN selectors, or a shared handle for in-memory ones). When the
//! supervisor respawns the shard, it builds a fresh engine, re-installs
//! every spec, transplants the dead worker's admitted-but-unserved backlog
//! onto the new queue, and bumps the generation counter. Because saved
//! selectors round-trip bitwise through [`SelectorStore`] and scoring is
//! deterministic, a respawned shard serves **bit-identical** `Selection`s
//! to its predecessor — worker death is invisible in the data plane.

use super::fault::{run_action, FaultAction, FaultInjector, FaultySelector};
use super::queue::{QueueConfig, QueueHook, QueueStats};
use super::{SelectorEngine, ServeError, ServeQueue};
use crate::manage::SelectorStore;
use crate::selector::Selector;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use tsdata::WindowConfig;

/// A re-creatable description of one registered selector — everything a
/// respawned shard needs to rebuild its engine registry.
#[derive(Clone)]
pub enum SelectorSpec {
    /// A persisted NN selector: reloaded from the store on every install,
    /// so registered state survives worker death as long as the store
    /// does.
    Stored {
        /// The store holding the selector's manifest + weights.
        store: SelectorStore,
        /// The serving window configuration.
        window: WindowConfig,
    },
    /// An in-memory selector shared by handle (e.g. a `nonnn` baseline or
    /// a just-trained deployment). Survives respawn because the spec keeps
    /// the `Arc` alive outside the shard's engine.
    Inline {
        /// The shared selector handle.
        selector: Arc<dyn Selector>,
    },
}

impl std::fmt::Debug for SelectorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectorSpec::Stored { store, window } => f
                .debug_struct("Stored")
                .field("dir", &store.dir())
                .field("window", window)
                .finish(),
            SelectorSpec::Inline { selector } => f
                .debug_struct("Inline")
                .field("name", &selector.name())
                .finish(),
        }
    }
}

/// The live half of a shard, replaced wholesale on respawn.
struct ShardState {
    engine: Arc<SelectorEngine>,
    queue: Arc<ServeQueue>,
    /// Selector specs owned by this shard, keyed by registered name.
    specs: BTreeMap<String, SelectorSpec>,
    /// Incremented on every respawn (generation 0 is the original worker).
    generation: u64,
    /// Queue counters accumulated from retired worker generations.
    retired_stats: QueueStats,
}

/// Bridges the shard's [`FaultInjector`] into the queue's [`QueueHook`]
/// seam, stamping events with the shard index.
struct ShardHook {
    shard: usize,
    injector: Arc<dyn FaultInjector>,
}

impl QueueHook for ShardHook {
    fn on_submit(&self, selector: &str) -> Option<ServeError> {
        match self.injector.on_submit(self.shard, selector) {
            Some(FaultAction::Reject) => Some(ServeError::Rejected),
            Some(other) => {
                // Panic/stall at admission would fault the *submitter*,
                // not the shard; run worker-side actions on the worker
                // only. Treat them as no-ops here.
                let _ = other;
                None
            }
            None => None,
        }
    }

    fn on_group(&self, selector: &str) {
        if let Some(action) = self.injector.on_group(self.shard, selector) {
            // Panics escape the queue's scoring guard by design: this is
            // the worker-death fault. Stalls wedge the heartbeat.
            run_action(action);
        }
    }
}

/// One supervised shard: engine + queue + respawnable registry.
pub(crate) struct Shard {
    index: usize,
    queue_config: QueueConfig,
    cache_capacity: usize,
    injector: Option<Arc<dyn FaultInjector>>,
    state: Mutex<ShardState>,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        queue_config: QueueConfig,
        cache_capacity: usize,
        injector: Option<Arc<dyn FaultInjector>>,
    ) -> Self {
        let engine = Self::fresh_engine(cache_capacity);
        let queue = Self::fresh_queue(index, &engine, queue_config, injector.as_ref());
        Self {
            index,
            queue_config,
            cache_capacity,
            injector,
            state: Mutex::new(ShardState {
                engine,
                queue,
                specs: BTreeMap::new(),
                generation: 0,
                retired_stats: QueueStats::default(),
            }),
        }
    }

    fn fresh_engine(cache_capacity: usize) -> Arc<SelectorEngine> {
        Arc::new(if cache_capacity > 0 {
            SelectorEngine::with_window_cache(cache_capacity)
        } else {
            SelectorEngine::new()
        })
    }

    fn fresh_queue(
        index: usize,
        engine: &Arc<SelectorEngine>,
        config: QueueConfig,
        injector: Option<&Arc<dyn FaultInjector>>,
    ) -> Arc<ServeQueue> {
        Arc::new(match injector {
            Some(injector) => ServeQueue::with_hook(
                Arc::clone(engine),
                config,
                Arc::new(ShardHook {
                    shard: index,
                    injector: Arc::clone(injector),
                }),
            ),
            None => ServeQueue::new(Arc::clone(engine), config),
        })
    }

    /// Builds the servable selector a spec describes and registers it on
    /// `engine`, wrapping it with the shard's fault injector if one is
    /// installed.
    fn install_on(
        &self,
        engine: &Arc<SelectorEngine>,
        name: &str,
        spec: &SelectorSpec,
    ) -> std::io::Result<()> {
        match spec {
            SelectorSpec::Stored { store, window } => {
                // `load` on the engine attaches its window cache and
                // validates the window length; but with an injector the
                // selector must be wrapped, so build it by hand the same
                // way `SelectorEngine::deploy` does.
                match &self.injector {
                    None => engine.load(store, name, *window),
                    Some(injector) => {
                        let model = store.load(name)?;
                        if model.window != window.length {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                format!(
                                    "selector {name:?} was trained with window length {}, \
                                     but the serving WindowConfig has length {}",
                                    model.window, window.length
                                ),
                            ));
                        }
                        let mut selector =
                            crate::selector::NnSelector::new(name.to_string(), model, *window);
                        if let Some(cache) = engine.window_cache() {
                            selector = selector.with_cache(Arc::clone(cache));
                        }
                        engine.register(
                            name,
                            Arc::new(FaultySelector::new(
                                Arc::new(selector),
                                Arc::clone(injector),
                                self.index,
                                name,
                            )),
                        );
                        Ok(())
                    }
                }
            }
            SelectorSpec::Inline { selector } => {
                let servable: Arc<dyn Selector> = match &self.injector {
                    None => Arc::clone(selector),
                    Some(injector) => Arc::new(FaultySelector::new(
                        Arc::clone(selector),
                        Arc::clone(injector),
                        self.index,
                        name,
                    )),
                };
                engine.register(name, servable);
                Ok(())
            }
        }
    }

    /// Registers a spec on the live engine and records it for respawn.
    pub(crate) fn register(&self, name: &str, spec: SelectorSpec) -> std::io::Result<()> {
        let mut st = self.state.lock().unwrap();
        self.install_on(&st.engine, name, &spec)?;
        st.specs.insert(name.to_string(), spec);
        Ok(())
    }

    /// Unregisters a selector from the live engine and the respawn set.
    pub(crate) fn unregister(&self, name: &str) -> bool {
        let mut st = self.state.lock().unwrap();
        st.engine.unregister(name);
        st.specs.remove(name).is_some()
    }

    /// The live queue (for submits). A clone of the `Arc`, so a respawn
    /// happening after this call leaves the caller holding the retiring
    /// queue — submits to it fail with `WorkerDied`/`ShuttingDown`, which
    /// the router's retry loop absorbs by re-fetching.
    pub(crate) fn queue(&self) -> Arc<ServeQueue> {
        Arc::clone(&self.state.lock().unwrap().queue)
    }

    pub(crate) fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    pub(crate) fn selector_names(&self) -> Vec<String> {
        self.state.lock().unwrap().specs.keys().cloned().collect()
    }

    pub(crate) fn has_selector(&self, name: &str) -> bool {
        self.state.lock().unwrap().specs.contains_key(name)
    }

    /// Lifetime queue counters across all worker generations.
    pub(crate) fn stats(&self) -> QueueStats {
        let st = self.state.lock().unwrap();
        st.retired_stats.merge(&st.queue.stats())
    }

    /// Liveness of the current worker generation.
    pub(crate) fn is_alive(&self) -> bool {
        self.state.lock().unwrap().queue.is_alive()
    }

    /// Supervisor probe: (heartbeat, has_work, depth) of the live queue.
    pub(crate) fn probe(&self) -> (u64, bool, usize) {
        let queue = self.queue();
        (queue.heartbeat(), queue.has_work(), queue.depth())
    }

    /// Replaces the worker: retires the current engine + queue (detaching
    /// a possibly-wedged worker thread rather than joining it), rebuilds
    /// the registry from the recorded specs, and transplants the retired
    /// queue's admitted-but-unserved backlog onto the new queue in FIFO
    /// order. Specs that fail to rebuild (e.g. store deleted out from
    /// under the shard) are dropped from the registry — their requests
    /// surface `UnknownSelector`, a typed error, rather than wedging the
    /// respawn.
    pub(crate) fn respawn(&self) {
        let mut st = self.state.lock().unwrap();
        // Retire the old worker without joining: it may be wedged (stalled
        // in a fault action) and the supervisor must not block on it. The
        // shutdown flag makes it exit — completing claimed tickets — when
        // it unblocks; a worker that *died* is already gone.
        st.queue.begin_shutdown();
        let backlog = st.queue.take_backlog();
        st.queue.detach_worker();
        st.retired_stats = st.retired_stats.merge(&st.queue.stats());

        let engine = Self::fresh_engine(self.cache_capacity);
        for (name, spec) in &st.specs {
            if let Err(err) = self.install_on(&engine, name, spec) {
                // Typed-error degradation beats a respawn loop that can
                // never succeed; the router's health view shows the gap.
                let _ = err;
            }
        }
        let queue = Self::fresh_queue(
            self.index,
            &engine,
            self.queue_config,
            self.injector.as_ref(),
        );
        for pending in backlog {
            queue.resubmit(pending);
        }
        st.engine = engine;
        st.queue = queue;
        st.generation += 1;
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap();
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("generation", &st.generation)
            .field("selectors", &st.specs.keys().collect::<Vec<_>>())
            .field("alive", &st.queue.is_alive())
            .finish()
    }
}
