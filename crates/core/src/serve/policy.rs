//! Request lifecycle policy for the sharded serving tier: bounded retries
//! with deterministic jittered backoff, and per-(shard, selector) circuit
//! breakers.
//!
//! Everything here is deliberately **clock- and RNG-free**:
//!
//! * Backoff jitter is a pure function of `(seed, selector, attempt)` —
//!   the same request retries with the same delays on every run, which is
//!   what lets the fault-injection replay contract extend to the retry
//!   paths ("given a seed and a fault schedule, replay is bitwise-identical
//!   to live").
//! * The breaker is **count-based**, not time-based: it trips after N
//!   consecutive failures and, while open, admits every K-th *arrival* as
//!   a half-open probe. Arrival counts are part of the request stream, so
//!   a scripted request sequence drives the breaker through the exact same
//!   state transitions regardless of wall-clock timing or `KD_THREADS`.

use crate::hash::{fnv1a_str, splitmix64};
use std::time::Duration;

/// Bounded-retry policy with deterministic jittered exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying; `3` means
    /// up to 4 total attempts).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Upper bound on the un-jittered backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Total attempts this policy allows (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The backoff to sleep before retry number `attempt` (1-based: the
    /// first retry is attempt 1). Exponential — `base · 2^(attempt−1)`,
    /// capped at `backoff_cap` — then scaled into `[50%, 100%]` by a
    /// deterministic jitter drawn from `(seed, selector, attempt)`.
    /// Jitter decorrelates concurrent retry storms across selectors while
    /// keeping every individual schedule replayable.
    pub fn backoff(&self, seed: u64, selector: &str, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.backoff_cap);
        let jitter = jitter01(splitmix64(
            seed ^ fnv1a_str(selector) ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        raw.mul_f64(0.5 + 0.5 * jitter)
    }
}

/// Maps a hash word onto `[0, 1)` using its top 53 bits (the f64 mantissa
/// width, so every representable step is equally likely).
fn jitter01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub trip_after: u32,
    /// While open, every `probe_every`-th arrival is admitted as a
    /// half-open probe (the first shed arrival starts the count; a
    /// successful probe closes the breaker). `1` probes on every arrival.
    pub probe_every: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            probe_every: 4,
        }
    }
}

/// What the breaker says about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerVerdict {
    /// Closed: serve normally.
    Serve,
    /// Open, but this arrival is the half-open probe: serve it; its
    /// outcome decides whether the breaker closes.
    Probe,
    /// Open: shed the request (the router degrades to the fallback).
    Shed,
}

/// A count-based circuit breaker for one (shard, selector) pair.
///
/// Closed → [`BreakerConfig::trip_after`] consecutive failures → Open.
/// While open, arrivals are shed except every
/// [`BreakerConfig::probe_every`]-th one, which is admitted as a probe;
/// a success (probe or otherwise) closes the breaker and clears the
/// failure count. Not internally synchronised — the router serialises
/// access through its breaker map lock.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    /// Consecutive failures since the last success.
    fails: u32,
    state: BreakerState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    /// Arrivals seen since the breaker opened (probes included).
    Open {
        arrivals: u32,
    },
}

impl Breaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config: BreakerConfig {
                trip_after: config.trip_after.max(1),
                probe_every: config.probe_every.max(1),
            },
            fails: 0,
            state: BreakerState::Closed,
        }
    }

    /// Classifies an arriving request (and, while open, advances the probe
    /// schedule).
    pub fn admit(&mut self) -> BreakerVerdict {
        match &mut self.state {
            BreakerState::Closed => BreakerVerdict::Serve,
            BreakerState::Open { arrivals } => {
                let n = *arrivals;
                *arrivals += 1;
                // Arrival 0 (the first one after tripping) is shed; the
                // probe_every-th, 2·probe_every-th, ... are probes.
                if n % self.config.probe_every == self.config.probe_every - 1 {
                    BreakerVerdict::Probe
                } else {
                    BreakerVerdict::Shed
                }
            }
        }
    }

    /// Records a successful service: closes the breaker and clears the
    /// consecutive-failure count.
    pub fn on_success(&mut self) {
        self.fails = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a service failure; trips the breaker once `trip_after`
    /// consecutive failures accumulate (a failed probe re-opens with a
    /// fresh arrival count).
    pub fn on_failure(&mut self) {
        self.fails = self.fails.saturating_add(1);
        if self.fails >= self.config.trip_after {
            self.state = BreakerState::Open { arrivals: 0 };
        }
    }

    /// Whether the breaker is currently open (shedding).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
        };
        // Same inputs → same delay, bit-for-bit.
        for attempt in 1..=5 {
            assert_eq!(
                policy.backoff(7, "resnet", attempt),
                policy.backoff(7, "resnet", attempt)
            );
        }
        // Jitter keeps each delay within [50%, 100%] of the raw backoff.
        for (attempt, raw_ms) in [(1u32, 2u64), (2, 4), (3, 8), (4, 16), (5, 32)] {
            let d = policy.backoff(7, "resnet", attempt);
            let raw = Duration::from_millis(raw_ms);
            assert!(d <= raw, "attempt {attempt}: {d:?} > {raw:?}");
            assert!(d >= raw.mul_f64(0.5), "attempt {attempt}: {d:?} too small");
        }
        // The cap bounds late attempts.
        assert!(policy.backoff(7, "resnet", 30) <= Duration::from_millis(40));
        // Different seeds and selectors decorrelate.
        assert_ne!(
            policy.backoff(7, "resnet", 3),
            policy.backoff(8, "resnet", 3)
        );
        assert_ne!(
            policy.backoff(7, "resnet", 3),
            policy.backoff(7, "convnet", 3)
        );
        // Attempt 0 (the first try) never sleeps.
        assert_eq!(policy.backoff(7, "resnet", 0), Duration::ZERO);
    }

    #[test]
    fn breaker_trips_probes_and_closes() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 3,
            probe_every: 4,
        });
        // Closed: serves, failures below the threshold don't trip.
        assert_eq!(b.admit(), BreakerVerdict::Serve);
        b.on_failure();
        b.on_failure();
        assert!(!b.is_open());
        assert_eq!(b.admit(), BreakerVerdict::Serve);
        // Third consecutive failure trips it.
        b.on_failure();
        assert!(b.is_open());
        assert_eq!(b.consecutive_failures(), 3);
        // Open: arrivals 0..=2 shed, arrival 3 probes.
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Probe);
        // Failed probe: stays open, schedule continues (arrivals 4..=6
        // shed, 7 probes).
        b.on_failure();
        assert!(b.is_open());
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Shed);
        assert_eq!(b.admit(), BreakerVerdict::Probe);
        // Successful probe closes and resets.
        b.on_success();
        assert!(!b.is_open());
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.admit(), BreakerVerdict::Serve);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 2,
            probe_every: 1,
        });
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert!(!b.is_open(), "non-consecutive failures must not trip");
        b.on_failure();
        assert!(b.is_open());
        // probe_every = 1: every open arrival probes.
        assert_eq!(b.admit(), BreakerVerdict::Probe);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let mut b = Breaker::new(BreakerConfig {
            trip_after: 0,
            probe_every: 0,
        });
        b.on_failure(); // trip_after clamps to 1
        assert!(b.is_open());
        assert_eq!(b.admit(), BreakerVerdict::Probe); // probe_every clamps to 1
    }
}
