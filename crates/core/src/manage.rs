//! Selector management: save, list, load (the demo system's "Selector
//! Management" module).
//!
//! A saved selector is a directory entry of two JSON files: a manifest
//! describing how to rebuild the architecture and a weight snapshot. The
//! store also persists training checkpoints (`<name>.ckpt`,
//! [`TrainCheckpoint`]) so interrupted sessions resume bitwise-identically.

use crate::arch::Architecture;
use crate::train::{TrainCheckpoint, TrainedSelector};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tsnn::serialize::{load_params, save_params, StateDict};

/// On-disk weight snapshot: trainable parameters plus non-trainable
/// buffers (batch-norm running statistics).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SavedState {
    /// Trainable parameters, `params_mut()` order.
    pub params: StateDict,
    /// Non-trainable buffers, `buffers_mut()` order.
    pub buffers: Vec<Vec<f32>>,
}

/// Manifest of a saved selector.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SelectorManifest {
    /// User-chosen name.
    pub name: String,
    /// Architecture to rebuild.
    pub arch: Architecture,
    /// Window length.
    pub window: usize,
    /// Encoder width.
    pub width: usize,
    /// Build seed (init shapes are seed-independent but kept for
    /// reproducibility records).
    pub seed: u64,
    /// Free-form notes (e.g. training configuration, evaluation results).
    pub notes: String,
}

/// Directory-backed selector store.
#[derive(Debug, Clone)]
pub struct SelectorStore {
    dir: PathBuf,
}

impl SelectorStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// Saves a selector under `name`, overwriting any previous version.
    ///
    /// Takes the selector by shared reference: saving snapshots read-only
    /// parameters and buffers, so a selector that is concurrently serving
    /// requests can be persisted without exclusive access.
    pub fn save(&self, name: &str, selector: &TrainedSelector, notes: &str) -> std::io::Result<()> {
        validate_name(name)?;
        let manifest = SelectorManifest {
            name: name.to_string(),
            arch: selector.arch,
            window: selector.window,
            width: selector.width,
            seed: selector.seed,
            notes: notes.to_string(),
        };
        let params = save_params(&selector.params());
        let buffers: Vec<Vec<f32>> = selector.buffers().iter().map(|b| b.to_vec()).collect();
        let state = SavedState { params, buffers };
        std::fs::write(
            self.manifest_path(name),
            serde_json::to_vec_pretty(&manifest)?,
        )?;
        std::fs::write(self.weights_path(name), serde_json::to_vec(&state)?)?;
        Ok(())
    }

    /// Loads a selector by name.
    pub fn load(&self, name: &str) -> std::io::Result<TrainedSelector> {
        validate_name(name)?;
        let manifest: SelectorManifest =
            serde_json::from_slice(&std::fs::read(self.manifest_path(name))?)?;
        let state: SavedState = serde_json::from_slice(&std::fs::read(self.weights_path(name))?)?;
        let mut selector = TrainedSelector::build(
            manifest.arch,
            manifest.window,
            manifest.width,
            manifest.seed,
        );
        load_params(&mut selector.params_mut(), &state.params)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut buffers = selector.buffers_mut();
        if buffers.len() != state.buffers.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "buffer count mismatch: model has {}, snapshot has {}",
                    buffers.len(),
                    state.buffers.len()
                ),
            ));
        }
        for (dst, src) in buffers.iter_mut().zip(&state.buffers) {
            if dst.len() != src.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "buffer length mismatch",
                ));
            }
            dst.copy_from_slice(src);
        }
        Ok(selector)
    }

    /// Whether a selector of this name is saved (both manifest and
    /// weights present) — the cheap existence probe the sharded router
    /// uses to validate a store-backed registration before placing it.
    pub fn contains(&self, name: &str) -> bool {
        validate_name(name).is_ok()
            && self.manifest_path(name).is_file()
            && self.weights_path(name).is_file()
    }

    /// Lists all saved selector manifests, sorted by name.
    pub fn list(&self) -> std::io::Result<Vec<SelectorManifest>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("manifest") {
                if let Ok(bytes) = std::fs::read(&path) {
                    if let Ok(m) = serde_json::from_slice::<SelectorManifest>(&bytes) {
                        out.push(m);
                    }
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Deletes a saved selector (and any checkpoint of the same name).
    /// Missing entries are not an error.
    pub fn delete(&self, name: &str) -> std::io::Result<()> {
        validate_name(name)?;
        for path in [
            self.manifest_path(name),
            self.weights_path(name),
            self.checkpoint_path(name),
        ] {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Persists a training checkpoint under `name`, overwriting any
    /// previous checkpoint of that name. The usual caller is
    /// [`crate::train::TrainSession::save_checkpoint`] at an epoch
    /// boundary.
    ///
    /// The write is atomic (unique temp file + rename), so a crash
    /// mid-save leaves the previous checkpoint intact — losing the
    /// checkpoint to the very interruption it exists to survive would
    /// defeat the point. Temp names are unique per (process, call), so
    /// concurrent saves of the same name cannot interleave bytes; failed
    /// writes clean their temp up (a hard kill between write and rename
    /// can still leave a dot-prefixed `.…tmp…` file behind, which `list`
    /// and `load_checkpoint` ignore).
    pub fn save_checkpoint(&self, name: &str, checkpoint: &TrainCheckpoint) -> std::io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        validate_name(name)?;
        let tmp = self.dir.join(format!(
            ".{name}.ckpt.tmp-{}-{}",
            std::process::id(),
            // kdlint: allow(relaxed): RMW-unique sequence — each caller gets
            // a distinct temp suffix; nothing is published through it.
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = serde_json::to_vec(checkpoint)?;
        let written = std::fs::write(&tmp, bytes)
            .and_then(|()| std::fs::rename(&tmp, self.checkpoint_path(name)));
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        written
    }

    /// Loads a training checkpoint by name (resume it with
    /// [`crate::train::TrainSession::resume`]).
    pub fn load_checkpoint(&self, name: &str) -> std::io::Result<TrainCheckpoint> {
        validate_name(name)?;
        Ok(serde_json::from_slice(&std::fs::read(
            self.checkpoint_path(name),
        )?)?)
    }

    fn manifest_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.manifest"))
    }

    fn weights_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.weights"))
    }

    fn checkpoint_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt"))
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn validate_name(name: &str) -> std::io::Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("invalid selector name {name:?} (use [A-Za-z0-9._-])"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainedSelector;

    fn temp_store(tag: &str) -> SelectorStore {
        let dir = std::env::temp_dir().join(format!("kdsel-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SelectorStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let store = temp_store("roundtrip");
        let mut original = TrainedSelector::build(Architecture::ConvNet, 32, 4, 9);
        // Perturb the batch-norm running statistics so the round trip must
        // restore buffers, not just trainable parameters.
        for (i, buf) in original.buffers_mut().into_iter().enumerate() {
            for (j, v) in buf.iter_mut().enumerate() {
                *v = 0.5 + 0.01 * (i + j) as f32;
            }
        }
        let windows: Vec<Vec<f32>> = (0..3)
            .map(|s| (0..32).map(|t| ((t + s) as f32 * 0.3).sin()).collect())
            .collect();
        let before = original.predict_logits(&windows);
        store.save("my-selector", &original, "unit test").unwrap();

        let loaded = store.load("my-selector").unwrap();
        let after = loaded.predict_logits(&windows);
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn list_and_delete() {
        let store = temp_store("list");
        let s = TrainedSelector::build(Architecture::ConvNet, 32, 4, 1);
        store.save("a", &s, "").unwrap();
        store.save("b", &s, "noted").unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].name, "a");
        assert_eq!(listed[1].notes, "noted");
        store.delete("a").unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        store.delete("a").unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn invalid_names_rejected() {
        let store = temp_store("names");
        let s = TrainedSelector::build(Architecture::ConvNet, 32, 4, 1);
        assert!(store.save("../evil", &s, "").is_err());
        assert!(store.save("", &s, "").is_err());
        assert!(store.load("no/slash").is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_missing_selector_fails() {
        let store = temp_store("missing");
        assert!(store.load("ghost").is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
