//! Non-NN baseline selectors (the left half of Fig. 4).
//!
//! * Feature-based: TSFresh-style features per window → KNN / SVC /
//!   AdaBoost / RandomForest.
//! * Kernel-based: MiniRocket transform → ridge-regression classifier
//!   (the "Rocket" baseline).

use crate::dataset::SelectorDataset;
use crate::selector::Selector;
use tsclassic::{
    adaboost::AdaBoostConfig, forest::ForestConfig, svc::SvcConfig, AdaBoost, Classifier, Knn,
    LinearSvc, RandomForest, RidgeClassifier, StandardScaler,
};
use tsdata::{extract_windows, TimeSeries, WindowConfig};
use tsfeatures::{extract_features, MiniRocket};

/// Which classic classifier a feature-based selector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureModel {
    /// K-nearest neighbours.
    Knn,
    /// Linear SVC.
    Svc,
    /// AdaBoost (SAMME).
    AdaBoost,
    /// Random forest.
    RandomForest,
}

impl FeatureModel {
    /// Display name matching the paper's Fig. 4 legend.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureModel::Knn => "KNN",
            FeatureModel::Svc => "SVC",
            FeatureModel::AdaBoost => "AdaBoost",
            FeatureModel::RandomForest => "RandomForest",
        }
    }
}

enum FittedModel {
    Knn(Knn),
    Svc(LinearSvc),
    Ada(AdaBoost),
    Forest(RandomForest),
}

impl FittedModel {
    fn predict(&self, x: &[f64]) -> usize {
        match self {
            FittedModel::Knn(m) => m.predict(x),
            FittedModel::Svc(m) => m.predict(x),
            FittedModel::Ada(m) => m.predict(x),
            FittedModel::Forest(m) => m.predict(x),
        }
    }
}

/// One-hot score row for classifiers that only expose a hard label.
fn one_hot(class: usize, n_classes: usize) -> Vec<f32> {
    let mut row = vec![0.0f32; n_classes];
    if class < n_classes {
        row[class] = 1.0;
    }
    row
}

/// A feature-based selector: window → features → classic classifier.
pub struct FeatureSelector {
    label: String,
    scaler: StandardScaler,
    model: FittedModel,
    window_cfg: WindowConfig,
}

impl FeatureSelector {
    /// Trains the selector on the dataset's windows and hard labels.
    ///
    /// `seed` drives the stochastic trainers (forest bootstrap, SVC shuffle).
    pub fn train(dataset: &SelectorDataset, kind: FeatureModel, seed: u64) -> Self {
        let features: Vec<Vec<f64>> = tspar::par_map(dataset.windows.len(), |i| {
            let as_f64: Vec<f64> = dataset.windows[i].iter().map(|&v| v as f64).collect();
            extract_features(&as_f64)
        });
        let scaler = StandardScaler::fit(&features);
        let scaled = scaler.transform_batch(&features);
        let labels = &dataset.hard_labels;
        let model = match kind {
            FeatureModel::Knn => FittedModel::Knn(Knn::fit(scaled, labels.clone(), 7)),
            FeatureModel::Svc => FittedModel::Svc(LinearSvc::fit(
                &scaled,
                labels,
                SvcConfig {
                    seed,
                    ..SvcConfig::default()
                },
            )),
            FeatureModel::AdaBoost => FittedModel::Ada(AdaBoost::fit(
                &scaled,
                labels,
                AdaBoostConfig {
                    seed,
                    ..AdaBoostConfig::default()
                },
            )),
            FeatureModel::RandomForest => FittedModel::Forest(RandomForest::fit(
                &scaled,
                labels,
                ForestConfig {
                    seed,
                    ..ForestConfig::default()
                },
            )),
        };
        Self {
            label: kind.name().to_string(),
            scaler,
            model,
            window_cfg: dataset.window_cfg,
        }
    }
}

impl Selector for FeatureSelector {
    fn name(&self) -> &str {
        &self.label
    }

    /// The classic classifiers expose only hard labels, so per-window
    /// scores are one-hot on the predicted class — votes and selections
    /// are unchanged from the label-only protocol.
    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        let classes = tsad_models::ModelId::ALL.len();
        extract_windows(ts, 0, &self.window_cfg)
            .into_iter()
            .map(|w| {
                let as_f64: Vec<f64> = w.values.iter().map(|&v| v as f64).collect();
                let f = self.scaler.transform(&extract_features(&as_f64));
                one_hot(self.model.predict(&f), classes)
            })
            .collect()
    }
}

/// The Rocket baseline: MiniRocket features + ridge classifier.
pub struct RocketSelector {
    label: String,
    rocket: MiniRocket,
    ridge: RidgeClassifier,
    window_cfg: WindowConfig,
}

impl RocketSelector {
    /// Trains MiniRocket bias quantiles and the ridge head.
    pub fn train(dataset: &SelectorDataset, seed: u64) -> Self {
        let windows64: Vec<Vec<f64>> = dataset
            .windows
            .iter()
            .map(|w| w.iter().map(|&v| v as f64).collect())
            .collect();
        let rocket = MiniRocket::fit(&windows64, 2, seed);
        let features = rocket.transform_batch(&windows64);
        let ridge = RidgeClassifier::fit(&features, &dataset.hard_labels, 1.0);
        Self {
            label: "Rocket".to_string(),
            rocket,
            ridge,
            window_cfg: dataset.window_cfg,
        }
    }
}

impl Selector for RocketSelector {
    fn name(&self) -> &str {
        &self.label
    }

    /// Ridge decision values per class — real margins, not one-hot — so
    /// downstream consumers (vote margins, score inspection) see the
    /// classifier's confidence. The ridge head only learns the classes
    /// present in its training labels; rows are padded with `-∞` to the
    /// full model-set width so the argmax can never pick an unseen class.
    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        let classes = tsad_models::ModelId::ALL.len();
        extract_windows(ts, 0, &self.window_cfg)
            .into_iter()
            .map(|w| {
                let as_f64: Vec<f64> = w.values.iter().map(|&v| v as f64).collect();
                let mut row: Vec<f32> = self
                    .ridge
                    .decision_function(&self.rocket.transform(&as_f64))
                    .into_iter()
                    .map(|v| v as f32)
                    .collect();
                row.resize(classes, f32::NEG_INFINITY);
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::PerfMatrix;
    use tsdata::{Benchmark, BenchmarkConfig};
    use tstext::FrozenTextEncoder;

    fn toy_dataset() -> (SelectorDataset, Vec<TimeSeries>) {
        let mut cfg = BenchmarkConfig::tiny();
        cfg.series_length = 256;
        let b = Benchmark::generate(cfg);
        let series: Vec<_> = b.train.into_iter().take(6).collect();
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..12)
                    .map(|m| if m == i % 2 { 0.8 } else { 0.1 })
                    .collect()
            })
            .collect();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        let enc = FrozenTextEncoder::new(32, 0);
        let wc = tsdata::WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        (SelectorDataset::build(&series, &perf, wc, &enc), series)
    }

    #[test]
    fn all_feature_selectors_train_and_vote() {
        let (ds, series) = toy_dataset();
        for kind in [
            FeatureModel::Knn,
            FeatureModel::Svc,
            FeatureModel::AdaBoost,
            FeatureModel::RandomForest,
        ] {
            let sel = FeatureSelector::train(&ds, kind, 3);
            assert_eq!(sel.name(), kind.name());
            let votes = sel.window_votes(&series[0]);
            assert!(!votes.is_empty(), "{kind:?}");
            assert!(votes.iter().all(|&v| v < 12), "{kind:?}");
        }
    }

    #[test]
    fn rocket_selector_trains_and_votes() {
        let (ds, series) = toy_dataset();
        let sel = RocketSelector::train(&ds, 5);
        assert_eq!(sel.name(), "Rocket");
        let votes = sel.window_votes(&series[1]);
        assert!(!votes.is_empty());
        assert!(votes.iter().all(|&v| v < 12));
        // Rocket exposes real decision margins, not one-hot rows.
        let scores = sel.series_scores(&series[1]);
        assert_eq!(scores[0].len(), 12);
    }

    #[test]
    fn knn_memorises_training_windows() {
        let (ds, series) = toy_dataset();
        let sel = FeatureSelector::train(&ds, FeatureModel::Knn, 0);
        // Voting on a training series should mostly recover its label.
        let votes = sel.window_votes(&series[0]);
        let label = ds.hard_labels[0];
        let hits = votes.iter().filter(|&&v| v == label).count();
        assert!(hits * 2 >= votes.len(), "hits {hits}/{}", votes.len());
    }

    #[test]
    fn baseline_batch_selection_matches_per_series() {
        let (ds, series) = toy_dataset();
        let sel = FeatureSelector::train(&ds, FeatureModel::Knn, 1);
        let batched = sel.select_batch(&series);
        let serial: Vec<_> = series.iter().map(|ts| sel.select(ts)).collect();
        assert_eq!(batched, serial);
    }
}
