//! End-to-end pipeline: benchmark → labels → selector learning → evaluation.
//!
//! This is the programmatic equivalent of the demo system's workflow
//! (§4: selector learning → model selection → anomaly detection) and the
//! entry point used by the examples and the benchmark harness.

use crate::dataset::SelectorDataset;
use crate::eval::{evaluate, EvalReport};
use crate::labels::{cached_perf_matrix, default_cache_dir, PerfMatrix};
use crate::nonnn::{FeatureModel, FeatureSelector, RocketSelector};
use crate::selector::{NnSelector, Selector};
use crate::train::{TrainConfig, TrainSession, TrainStats};
use std::path::PathBuf;
use tsdata::{Benchmark, BenchmarkConfig, WindowConfig};
use tstext::FrozenTextEncoder;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic benchmark parameters.
    pub benchmark: BenchmarkConfig,
    /// Window extraction parameters (shared by training and inference).
    pub window: WindowConfig,
    /// Selector training parameters.
    pub train: TrainConfig,
    /// Frozen text-encoder width (the BERT stand-in).
    pub text_dim: usize,
    /// Seed for the detectors used in label generation.
    pub detector_seed: u64,
    /// Label cache directory.
    pub cache_dir: PathBuf,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            benchmark: BenchmarkConfig::default(),
            window: WindowConfig {
                length: 64,
                stride: 64,
                znormalize: true,
            },
            train: TrainConfig::default(),
            text_dim: 256,
            detector_seed: 11,
            cache_dir: default_cache_dir(),
        }
    }
}

impl PipelineConfig {
    /// Small configuration for tests and quick demos (minutes → seconds).
    pub fn quick() -> Self {
        let mut cfg = Self {
            benchmark: BenchmarkConfig {
                train_series_per_family: 3,
                test_series_per_family: 2,
                series_length: 600,
                seed: 7,
            },
            ..Self::default()
        };
        cfg.train.epochs = 6;
        cfg.train.width = 6;
        cfg
    }
}

/// A prepared pipeline: benchmark generated, labels computed (or loaded from
/// cache), training dataset assembled.
pub struct Pipeline {
    /// Configuration used.
    pub config: PipelineConfig,
    /// The generated benchmark.
    pub benchmark: Benchmark,
    /// Train-split performance matrix (label source).
    pub train_perf: PerfMatrix,
    /// Test-split performance matrix (evaluation lookup).
    pub test_perf: PerfMatrix,
    /// Window-level training data.
    pub dataset: SelectorDataset,
}

/// Result of training + evaluating one NN selector.
pub struct TrainOutcome {
    /// The trained selector, ready for selection/detection.
    pub selector: NnSelector,
    /// Training statistics (loss curve, wall time, samples examined).
    pub stats: TrainStats,
    /// Evaluation on the test split.
    pub report: EvalReport,
}

impl Pipeline {
    /// Generates the benchmark and computes (or loads) both label matrices.
    pub fn prepare(config: PipelineConfig) -> std::io::Result<Self> {
        let benchmark = Benchmark::generate(config.benchmark);
        let fp = config.benchmark.fingerprint();
        let train_perf = cached_perf_matrix(
            &config.cache_dir,
            &format!("{fp}-train"),
            &benchmark.train,
            config.detector_seed,
        )?;
        let test_perf = cached_perf_matrix(
            &config.cache_dir,
            &format!("{fp}-test"),
            &benchmark.test,
            config.detector_seed,
        )?;
        let encoder = FrozenTextEncoder::new(config.text_dim, 0xBEB7);
        let dataset =
            SelectorDataset::build(&benchmark.train, &train_perf, config.window, &encoder);
        Ok(Self {
            config,
            benchmark,
            train_perf,
            test_perf,
            dataset,
        })
    }

    /// Trains an NN selector with the pipeline's training config.
    pub fn train_nn_selector(&self) -> TrainOutcome {
        self.train_nn_with(&self.config.train, self.config.train.arch.name())
    }

    /// Opens a training session over the pipeline's dataset — the entry
    /// point for per-epoch control, checkpoint/resume, and deployment into
    /// a live [`crate::serve::SelectorEngine`]. [`Pipeline::train_nn_with`]
    /// is the run-to-completion convenience on top of this.
    pub fn train_session(&self, cfg: &TrainConfig) -> TrainSession {
        TrainSession::new(&self.dataset, cfg)
    }

    /// Trains an NN selector with an explicit config and display label by
    /// driving a [`TrainSession`] to completion.
    pub fn train_nn_with(&self, cfg: &TrainConfig, label: &str) -> TrainOutcome {
        let mut session = self.train_session(cfg);
        session.run_to_completion(&self.dataset);
        let (model, stats) = session.finish();
        let selector = NnSelector::new(label, model, self.config.window);
        let report = evaluate(&selector, &self.benchmark.test, &self.test_perf);
        TrainOutcome {
            selector,
            stats,
            report,
        }
    }

    /// Trains and evaluates a feature-based baseline.
    pub fn run_feature_baseline(&self, kind: FeatureModel) -> (EvalReport, f64) {
        // kdlint: allow(wallclock): reported training-time metric only — the
        // selector and its evaluation never read the clock.
        let start = std::time::Instant::now();
        let selector = FeatureSelector::train(&self.dataset, kind, self.config.train.seed);
        let seconds = start.elapsed().as_secs_f64();
        (
            evaluate(&selector, &self.benchmark.test, &self.test_perf),
            seconds,
        )
    }

    /// Trains and evaluates the Rocket baseline.
    pub fn run_rocket_baseline(&self) -> (EvalReport, f64) {
        // kdlint: allow(wallclock): reported training-time metric only — the
        // selector and its evaluation never read the clock.
        let start = std::time::Instant::now();
        let selector = RocketSelector::train(&self.dataset, self.config.train.seed);
        let seconds = start.elapsed().as_secs_f64();
        (
            evaluate(&selector, &self.benchmark.test, &self.test_perf),
            seconds,
        )
    }

    /// Evaluates an already-trained selector on this pipeline's test split.
    pub fn evaluate_selector(&self, selector: &dyn Selector) -> EvalReport {
        evaluate(selector, &self.benchmark.test, &self.test_perf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end smoke test at tiny scale (runs the real detectors on
    /// a handful of short series; a few seconds).
    #[test]
    fn quick_pipeline_end_to_end() {
        let mut cfg = PipelineConfig::quick();
        cfg.benchmark = BenchmarkConfig {
            train_series_per_family: 1,
            test_series_per_family: 1,
            series_length: 300,
            seed: 3,
        };
        cfg.window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        cfg.train.epochs = 2;
        cfg.train.width = 4;
        cfg.cache_dir = std::env::temp_dir().join(format!("kdsel-pipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);

        let pipeline = Pipeline::prepare(cfg).unwrap();
        assert_eq!(pipeline.benchmark.train.len(), 16);
        assert_eq!(pipeline.benchmark.test.len(), 14);
        assert!(!pipeline.dataset.is_empty());

        let outcome = pipeline.train_nn_selector();
        assert_eq!(outcome.report.per_dataset.len(), 14);
        let avg = outcome.report.average_auc_pr();
        assert!((0.0..=1.0).contains(&avg), "avg={avg}");

        // Second prepare hits the cache and agrees.
        let pipeline2 = Pipeline::prepare(pipeline.config.clone()).unwrap();
        assert_eq!(pipeline.train_perf, pipeline2.train_perf);
        let _ = std::fs::remove_dir_all(&pipeline.config.cache_dir);
    }
}
