//! Two-layer MLP used for the MKI projections `h_T` and `h_K`.

use rand::rngs::StdRng;
use tsnn::layers::{Layer, Linear, Relu};
use tsnn::{Param, Tensor};

/// `in → hidden (ReLU) → out` projection, as specified in §B.1 of the paper
/// (one hidden layer of 256 units).
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    relu: Relu,
    fc2: Linear,
}

impl Mlp {
    /// New projection MLP.
    pub fn new(input: usize, hidden: usize, output: usize, rng: &mut StdRng) -> Self {
        Self {
            fc1: Linear::new(input, hidden, rng),
            relu: Relu::new(),
            fc2: Linear::new(hidden, output, rng),
        }
    }

    /// Forward pass on `(N, in) → (N, out)`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.fc1.forward(x, train);
        let a = self.relu.forward(&h, train);
        self.fc2.forward(&a, train)
    }

    /// Backward pass; returns ∂loss/∂input.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.fc2.backward(grad);
        let g = self.relu.backward(&g);
        self.fc1.backward(&g)
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fc1.params_mut();
        p.extend(self.fc2.params_mut());
        p
    }

    /// Read-only view of the trainable parameters, `params_mut()` order
    /// (checkpointing snapshots the MKI projections through this).
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.fc1.params();
        p.extend(self.fc2.params());
        p
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.fc2.out_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(8, 16, 4, &mut rng);
        let x = Tensor::zeros(&[3, 8]);
        let y = mlp.forward(&x, false);
        assert_eq!(y.shape(), &[3, 4]);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(4, 8, 2, &mut rng);
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| i as f32 * 0.1).collect());
        let y = mlp.forward(&x, true);
        let g = mlp.backward(&Tensor::from_vec(y.shape(), vec![1.0; y.numel()]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(4, 8, 2, &mut rng);
        let count: usize = mlp.params_mut().iter().map(|p| p.numel()).sum();
        assert_eq!(count, 4 * 8 + 8 + 8 * 2 + 2);
    }
}
