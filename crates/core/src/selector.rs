//! The selector protocol and majority voting (§2 of the paper).

use crate::train::TrainedSelector;
use tsad_models::ModelId;
use tsdata::{extract_windows, TimeSeries, WindowConfig};

/// A TSAD model selector: predicts the best model for a series.
pub trait Selector {
    /// Display name, e.g. `"ResNet"` or `"Ours"`.
    fn name(&self) -> &str;

    /// Per-window class votes for one series.
    fn window_votes(&mut self, ts: &TimeSeries) -> Vec<usize>;

    /// Selects a model for a series by majority vote over its windows
    /// (ties break toward the lower model index, deterministically).
    fn select(&mut self, ts: &TimeSeries) -> ModelId {
        let votes = self.window_votes(ts);
        ModelId::from_index(majority_vote(&votes, ModelId::ALL.len()))
    }
}

/// Majority vote with deterministic low-index tie-break.
pub fn majority_vote(votes: &[usize], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &v in votes {
        if v < n_classes {
            counts[v] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// An NN selector: a trained encoder+classifier plus window preprocessing.
pub struct NnSelector {
    /// Display name.
    pub label: String,
    /// The trained network.
    pub model: TrainedSelector,
    /// Window extraction used at inference (must match training).
    pub window_cfg: WindowConfig,
}

impl NnSelector {
    /// Wraps a trained model.
    pub fn new(label: impl Into<String>, model: TrainedSelector, window_cfg: WindowConfig) -> Self {
        Self {
            label: label.into(),
            model,
            window_cfg,
        }
    }
}

impl Selector for NnSelector {
    fn name(&self) -> &str {
        &self.label
    }

    fn window_votes(&mut self, ts: &TimeSeries) -> Vec<usize> {
        let windows: Vec<Vec<f32>> = extract_windows(ts, 0, &self.window_cfg)
            .into_iter()
            .map(|w| w.values)
            .collect();
        if windows.is_empty() {
            return Vec::new();
        }
        self.model.predict_windows(&windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_picks_mode() {
        assert_eq!(majority_vote(&[1, 2, 2, 3, 2], 12), 2);
    }

    #[test]
    fn majority_vote_tie_breaks_low_index() {
        assert_eq!(majority_vote(&[5, 3, 5, 3], 12), 3);
    }

    #[test]
    fn majority_vote_empty_defaults_to_zero() {
        assert_eq!(majority_vote(&[], 12), 0);
    }

    #[test]
    fn out_of_range_votes_ignored() {
        assert_eq!(majority_vote(&[99, 99, 1], 12), 1);
    }
}
