//! The selector protocol and majority voting (§2 of the paper).
//!
//! Redesigned around **immutability and batching**: a trained selector is a
//! read-only inference artefact (`&self` everywhere, `Send + Sync`), and the
//! primary entry point is batch-first — [`Selector::window_scores`] maps a
//! batch of series to per-window class *scores* (not just argmax votes).
//! Per-series votes, per-series selection and batched selection are all
//! derived from that one kernel, so every path — single series, batch,
//! [`crate::serve::SelectorEngine`] — produces bit-identical decisions.
//!
//! The default batch implementation fans the per-series kernel out over
//! [`tspar`]'s fixed work partitions, executed on the persistent worker
//! pool: results are bit-identical at any `KD_THREADS` setting (and on the
//! spawn reference backend) because each series is scored independently
//! and the partition boundaries never depend on the worker count.

use crate::serve::WindowCache;
use crate::train::TrainedSelector;
use std::sync::Arc;
use tsad_models::ModelId;
use tsdata::{extract_windows, TimeSeries, WindowConfig};

/// A TSAD model selector: predicts the best model for a series.
///
/// Implementors provide [`Selector::series_scores`] — per-window class
/// scores for one series — and inherit batched scoring, voting and
/// selection. All methods take `&self`; a selector must be shareable across
/// serving threads (`Send + Sync`).
pub trait Selector: Send + Sync {
    /// Display name, e.g. `"ResNet"` or `"Ours"`.
    fn name(&self) -> &str;

    /// Per-window class scores for one series: one row per window, one
    /// column per model in [`ModelId::ALL`] order. Higher is better; the
    /// row argmax is the window's vote. Series too short for a single
    /// window yield an empty matrix.
    ///
    /// Scores need not be finite: vote derivation uses [`argmax`], whose
    /// contract is pinned — ties keep the lowest index, `NaN` scores are
    /// ignored, and an all-`NaN` row votes for index 0 — so a selector
    /// emitting `NaN`s degrades deterministically instead of making the
    /// winner depend on score order.
    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>>;

    /// Batch-first entry point: scores for every series in the batch,
    /// preserving order. Delegates to [`Selector::window_scores_refs`]
    /// (collecting a reference view is free), so for non-overriders the
    /// owned and borrowed batch paths cannot drift apart.
    ///
    /// **Batch-consistency contract:** the serving layer uses *both*
    /// batch methods — `window_scores` for contiguous batches
    /// ([`crate::serve::SelectorEngine::select_batch`]) and
    /// [`Selector::window_scores_refs`] for coalesced queued requests —
    /// and promises bit-identical results across those paths. The
    /// defaults uphold that automatically; an implementor overriding
    /// either batch method must override the other to match, or the
    /// queued ≡ direct determinism contract silently breaks. Prefer
    /// customising [`Selector::series_scores`] only.
    fn window_scores(&self, batch: &[TimeSeries]) -> Vec<Vec<Vec<f32>>> {
        self.window_scores_refs(&batch.iter().collect::<Vec<_>>())
    }

    /// The batched scoring kernel, over borrowed series: fans
    /// [`Selector::series_scores`] out over [`tspar::par_map`]'s fixed
    /// partitions (which depend only on the count) — bit-identical to the
    /// serial per-series loop at any thread count, and to
    /// [`Selector::window_scores`] on the same series without the caller
    /// materialising a contiguous batch. The serving queue's coalescer
    /// uses this to merge requests with zero series copies. Subject to
    /// the batch-consistency contract on [`Selector::window_scores`].
    fn window_scores_refs(&self, batch: &[&TimeSeries]) -> Vec<Vec<Vec<f32>>> {
        tspar::par_map(batch.len(), |i| self.series_scores(batch[i]))
    }

    /// Per-window class votes for one series (row argmax of the scores).
    fn window_votes(&self, ts: &TimeSeries) -> Vec<usize> {
        self.series_scores(ts)
            .iter()
            .map(|row| argmax(row))
            .collect()
    }

    /// Selects a model for a series by majority vote over its windows
    /// (ties break toward the lower model index, deterministically).
    fn select(&self, ts: &TimeSeries) -> ModelId {
        let votes = self.window_votes(ts);
        ModelId::from_index(majority_vote(&votes, ModelId::ALL.len()))
    }

    /// Selects a model for every series in the batch. Derived from the
    /// batched scores, so it matches per-series [`Selector::select`] calls
    /// exactly.
    fn select_batch(&self, batch: &[TimeSeries]) -> Vec<ModelId> {
        self.window_scores(batch)
            .iter()
            .map(|scores| {
                let votes: Vec<usize> = scores.iter().map(|row| argmax(row)).collect();
                ModelId::from_index(majority_vote(&votes, ModelId::ALL.len()))
            })
            .collect()
    }
}

/// Row argmax with the workspace's canonical semantics: one forward scan
/// where only a strictly greater score displaces the incumbent, so the
/// **first** greatest score wins (ties keep the lowest index) and `NaN`
/// scores are skipped — `NaN` never compares greater than anything,
/// including the `NEG_INFINITY` the scan starts from. An all-`NaN` or
/// empty row deterministically selects index 0. The previous `max_by`
/// formulation mapped incomparable pairs to `Equal`, which made the
/// winner under `NaN`s depend on where they sat in the row. Every vote
/// derivation in the crate goes through this one function so batched and
/// per-series paths can never disagree.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = f32::NEG_INFINITY;
    let mut idx = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > best {
            best = v;
            idx = i;
        }
    }
    idx
}

/// Tallies votes per class, ignoring out-of-range votes.
pub fn vote_counts(votes: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &v in votes {
        if v < n_classes {
            counts[v] += 1;
        }
    }
    counts
}

/// The winning class of a tally, with deterministic low-index tie-break.
/// The single majority rule every selection path shares — trait-derived
/// `select`, batched `select_batch`, and the serving layer's
/// [`crate::serve::Selection`] all go through here.
pub fn majority_winner(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Majority vote with deterministic low-index tie-break.
pub fn majority_vote(votes: &[usize], n_classes: usize) -> usize {
    majority_winner(&vote_counts(votes, n_classes))
}

/// An NN selector: a trained encoder+classifier plus window preprocessing.
///
/// Inference runs through [`TrainedSelector::predict_logits`]'s immutable
/// path, so an `NnSelector` is `Send + Sync` and can serve concurrent
/// batches without cloning the network.
pub struct NnSelector {
    /// Display name.
    pub label: String,
    /// The trained network.
    pub model: TrainedSelector,
    /// Window extraction used at inference (must match training).
    pub window_cfg: WindowConfig,
    /// Optional shared window-extraction cache: repeat series (keyed by
    /// content + window config, never by id) skip re-windowing and
    /// z-normalisation. A hit returns the exact matrix the cold path
    /// built, so caching can never change scores.
    cache: Option<Arc<WindowCache>>,
}

impl NnSelector {
    /// Wraps a trained model.
    pub fn new(label: impl Into<String>, model: TrainedSelector, window_cfg: WindowConfig) -> Self {
        Self {
            label: label.into(),
            model,
            window_cfg,
            cache: None,
        }
    }

    /// Attaches a shared window-extraction cache (see
    /// [`crate::serve::WindowCache`] for the keying contract).
    pub fn with_cache(mut self, cache: Arc<WindowCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached window cache, if any.
    pub fn cache(&self) -> Option<&Arc<WindowCache>> {
        self.cache.as_ref()
    }

    fn extract(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        kdprof::span!(kdprof::Phase::Window);
        let out: Vec<Vec<f32>> = extract_windows(ts, 0, &self.window_cfg)
            .into_iter()
            .map(|w| w.values)
            .collect();
        kdprof::incr(kdprof::Counter::WindowsBuilt, out.len() as u64);
        out
    }

    /// The cache-aware window matrix for one series: a shared hit, or a
    /// freshly extracted (and, with a cache, inserted) matrix. Hits return
    /// the exact matrix the cold path built, so caching never changes
    /// scores.
    fn windows_for(&self, ts: &TimeSeries) -> Arc<Vec<Vec<f32>>> {
        match &self.cache {
            Some(cache) => cache.get_or_insert(ts, &self.window_cfg, || self.extract(ts)),
            None => Arc::new(self.extract(ts)),
        }
    }
}

impl Selector for NnSelector {
    fn name(&self) -> &str {
        &self.label
    }

    // kdprof: hot
    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        kdprof::incr(kdprof::Counter::SeriesScored, 1);
        if self.cache.is_some() {
            let windows = self.windows_for(ts);
            if windows.is_empty() {
                return Vec::new();
            }
            let rows: Vec<&[f32]> = windows.iter().map(Vec::as_slice).collect();
            return self.model.predict_logits_rows(&rows);
        }
        // Uncached single-series path: window buffers come from this
        // thread's scratch arena and return to it after scoring, so
        // repeated uncached selections re-window allocation-free. The
        // arena borrow is released before prediction (which pools its own
        // staging through the same arena) and re-taken to return buffers.
        let mut windows: Vec<Vec<f32>> = Vec::new();
        {
            kdprof::span!(kdprof::Phase::Window);
            crate::serve::arena::with_arena(|a| {
                tsdata::extract_window_values_into(
                    ts,
                    &self.window_cfg,
                    || a.take_window_buf(),
                    &mut windows,
                );
            });
        }
        kdprof::incr(kdprof::Counter::WindowsBuilt, windows.len() as u64);
        if windows.is_empty() {
            return Vec::new();
        }
        let rows: Vec<&[f32]> = windows.iter().map(Vec::as_slice).collect();
        let scores = self.model.predict_logits_rows(&rows);
        crate::serve::arena::with_arena(|a| a.put_window_bufs(windows));
        scores
    }

    /// Group-batched scoring: gather every series' window matrix (in
    /// parallel, cache-aware), then run **one** chunked forward pass over
    /// the concatenated window rows and split the logits back per series.
    /// Batching per-window rows across series amortises the per-layer
    /// dispatch overhead the per-series default pays once per series.
    ///
    /// Bit-identical to the default (`series_scores` per series): every
    /// layer of the forward pass is per-batch-element independent, the
    /// GEMM kernels are row-independent with all dispatch variants pinned
    /// bitwise-equal, and `tests/serve_arena.rs` pins grouped ≡ per-series
    /// directly. `window_scores` delegates here, so the batch-consistency
    /// contract holds by construction.
    // kdprof: hot
    fn window_scores_refs(&self, batch: &[&TimeSeries]) -> Vec<Vec<Vec<f32>>> {
        if batch.is_empty() {
            return Vec::new();
        }
        kdprof::incr(kdprof::Counter::SeriesScored, batch.len() as u64);
        let per_series: Vec<Arc<Vec<Vec<f32>>>> =
            tspar::par_map(batch.len(), |i| self.windows_for(batch[i]));
        let rows: Vec<&[f32]> = per_series
            .iter()
            .flat_map(|w| w.iter().map(Vec::as_slice))
            .collect();
        if rows.is_empty() {
            return vec![Vec::new(); batch.len()];
        }
        let mut scores = self.model.predict_logits_rows(&rows).into_iter();
        per_series
            .iter()
            .map(|w| scores.by_ref().take(w.len()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_picks_mode() {
        assert_eq!(majority_vote(&[1, 2, 2, 3, 2], 12), 2);
    }

    #[test]
    fn majority_vote_tie_breaks_low_index() {
        assert_eq!(majority_vote(&[5, 3, 5, 3], 12), 3);
    }

    #[test]
    fn majority_vote_empty_defaults_to_zero() {
        assert_eq!(majority_vote(&[], 12), 0);
    }

    #[test]
    fn out_of_range_votes_ignored() {
        assert_eq!(majority_vote(&[99, 99, 1], 12), 1);
    }

    #[test]
    fn argmax_picks_peak() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    /// A selector whose scores are a fixed ramp per window.
    struct Ramp;

    impl Selector for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
            // One "window" per 10 points; class (len/10 % 12) peaks.
            let w = ts.len() / 10;
            (0..w)
                .map(|_| {
                    let mut row = vec![0.0f32; 12];
                    row[(ts.len() / 10) % 12] = 1.0;
                    row
                })
                .collect()
        }
    }

    #[test]
    fn batched_selection_matches_per_series() {
        let batch: Vec<TimeSeries> = (1..7)
            .map(|i| TimeSeries::new(format!("s{i}"), "D", vec![0.0; i * 17], vec![]))
            .collect();
        let sel = Ramp;
        let batched = sel.select_batch(&batch);
        let serial: Vec<ModelId> = batch.iter().map(|ts| sel.select(ts)).collect();
        assert_eq!(batched, serial);
        // Trait-object path agrees too.
        let dyn_sel: &dyn Selector = &sel;
        assert_eq!(dyn_sel.select_batch(&batch), serial);
    }

    #[test]
    fn window_scores_preserves_batch_order() {
        let batch: Vec<TimeSeries> = (1..5)
            .map(|i| TimeSeries::new(format!("s{i}"), "D", vec![0.0; i * 10], vec![]))
            .collect();
        let scores = Ramp.window_scores(&batch);
        assert_eq!(scores.len(), 4);
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(s.len(), i + 1, "series {i} window count");
        }
    }
}
