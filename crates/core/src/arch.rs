//! The NN selector architectures of the paper's evaluation.
//!
//! Each architecture is a time-series **encoder** `E_T : (N, 1, L) → (N, D)`;
//! the selector appends a linear classifier `C_T : (N, D) → (N, 12)`. All
//! four are the standard TSC versions used by the benchmark paper, sized for
//! the CPU substrate:
//!
//! * [`Architecture::ConvNet`] — three Conv-BN-ReLU-MaxPool stages + GAP.
//! * [`Architecture::ResNet`] — three residual blocks (k = 7/5/3) + GAP.
//! * [`Architecture::InceptionTime`] — two inception modules (bottleneck,
//!   multi-scale kernels, max-pool path) with a residual connection + GAP.
//! * [`Architecture::Transformer`] — conv patch stem + learned positional
//!   embedding + two pre-norm MHSA/FFN blocks + mean pooling (the SiT-stem
//!   family).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsnn::layers::{
    BatchNorm1d, Conv1d, Gelu, Layer, LayerNorm, Linear, MaxPool1d, MultiHeadSelfAttention, Relu,
};
use tsnn::{init, Param, Tensor};

/// A trainable time-series encoder.
///
/// Training goes through the stateful `forward`/`backward` pair; serving
/// goes through [`Encoder::infer`], which takes `&self` and is
/// bit-identical to `forward(x, false)`. `Send + Sync` makes a trained
/// encoder shareable across serving threads without cloning.
pub trait Encoder: Send + Sync {
    /// `(N, 1, L) → (N, D)` feature extraction.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;
    /// Inference-mode feature extraction: identical output to
    /// `forward(x, false)` but immutable and thread-safe.
    fn infer(&self, x: &Tensor) -> Tensor;
    /// Backward pass; input gradient is discarded by callers (inputs are
    /// data), but parameter gradients accumulate.
    fn backward(&mut self, grad: &Tensor) -> Tensor;
    /// Trainable parameters in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;
    /// Read-only view of the trainable parameters, `params_mut()` order.
    fn params(&self) -> Vec<&Param>;
    /// Non-trainable state in a stable order — batch-norm running statistics
    /// — which persistence must save alongside the parameters.
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }
    /// Read-only view of the non-trainable state, `buffers_mut()` order.
    fn buffers(&self) -> Vec<&Vec<f32>> {
        Vec::new()
    }
    /// Output feature width `D`.
    fn feature_dim(&self) -> usize;
}

/// Selector architecture identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Architecture {
    /// Plain convolutional network.
    ConvNet,
    /// Residual convolutional network (the paper's default).
    ResNet,
    /// InceptionTime-style multi-scale network.
    InceptionTime,
    /// Convolutional-stem transformer (SiT-stem family).
    Transformer,
}

impl Architecture {
    /// All architectures in evaluation order.
    pub const ALL: [Architecture; 4] = [
        Architecture::ConvNet,
        Architecture::ResNet,
        Architecture::InceptionTime,
        Architecture::Transformer,
    ];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::ConvNet => "ConvNet",
            Architecture::ResNet => "ResNet",
            Architecture::InceptionTime => "InceptionTime",
            Architecture::Transformer => "Transformer",
        }
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// Builds the encoder for `window`-length inputs.
    ///
    /// `width` is the base channel count (default 12); the exact feature
    /// width depends on the architecture and is reported by
    /// [`Encoder::feature_dim`].
    pub fn build(&self, window: usize, width: usize, seed: u64) -> Box<dyn Encoder> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Architecture::ConvNet => Box::new(ConvNetEncoder::new(width, &mut rng)),
            Architecture::ResNet => Box::new(ResNetEncoder::new(width, &mut rng)),
            Architecture::InceptionTime => Box::new(InceptionEncoder::new(width, &mut rng)),
            Architecture::Transformer => Box::new(TransformerEncoder::new(window, width, &mut rng)),
        }
    }
}

// ---------------------------------------------------------------------------
// ConvNet
// ---------------------------------------------------------------------------

struct ConvStage {
    conv: Conv1d,
    bn: BatchNorm1d,
    relu: Relu,
    pool: Option<MaxPool1d>,
}

impl ConvStage {
    fn new(cin: usize, cout: usize, k: usize, pool: bool, rng: &mut StdRng) -> Self {
        Self {
            conv: Conv1d::new(cin, cout, k, rng),
            bn: BatchNorm1d::new(cout),
            relu: Relu::new(),
            pool: pool.then(|| MaxPool1d::new(2)),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.conv.forward(x, train);
        let y = self.bn.forward(&y, train);
        let y = self.relu.forward(&y, train);
        match &mut self.pool {
            Some(p) => p.forward(&y, train),
            None => y,
        }
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let y = self.conv.infer(x);
        let y = self.bn.infer(&y);
        let y = self.relu.infer(&y);
        match &self.pool {
            Some(p) => p.infer(&y),
            None => y,
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = match &mut self.pool {
            Some(p) => p.backward(grad),
            None => grad.clone(),
        };
        let g = self.relu.backward(&g);
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv.params_mut();
        p.extend(self.bn.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.conv.params();
        p.extend(self.bn.params());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.bn.running_mean, &mut self.bn.running_var]
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        vec![&self.bn.running_mean, &self.bn.running_var]
    }
}

/// Global average pooling `(N, C, L) → (N, C)` with cached input length.
struct Gap {
    in_shape: Option<Vec<usize>>,
}

impl Gap {
    fn new() -> Self {
        Self { in_shape: None }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        self.infer(x)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let mut y = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            let xb = x.batch(ni);
            for ci in 0..c {
                y.row_mut(ni)[ci] = xb[ci * l..(ci + 1) * l].iter().sum::<f32>() / l as f32;
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self.in_shape.take().expect("backward without forward");
        let (n, c, l) = (shape[0], shape[1], shape[2]);
        let mut gx = Tensor::zeros(&shape);
        for ni in 0..n {
            let g_row = grad.row(ni);
            let ob = gx.batch_mut(ni);
            for ci in 0..c {
                let g = g_row[ci] / l as f32;
                for v in &mut ob[ci * l..(ci + 1) * l] {
                    *v = g;
                }
            }
        }
        gx
    }
}

/// Plain three-stage ConvNet encoder.
pub struct ConvNetEncoder {
    s1: ConvStage,
    s2: ConvStage,
    s3: ConvStage,
    gap: Gap,
    dim: usize,
}

impl ConvNetEncoder {
    fn new(width: usize, rng: &mut StdRng) -> Self {
        let (c1, c2) = (width, 2 * width);
        Self {
            s1: ConvStage::new(1, c1, 7, true, rng),
            s2: ConvStage::new(c1, c2, 5, true, rng),
            s3: ConvStage::new(c2, c2, 3, false, rng),
            gap: Gap::new(),
            dim: c2,
        }
    }
}

impl Encoder for ConvNetEncoder {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.s1.forward(x, train);
        let y = self.s2.forward(&y, train);
        let y = self.s3.forward(&y, train);
        self.gap.forward(&y, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let y = self.s1.infer(x);
        let y = self.s2.infer(&y);
        let y = self.s3.infer(&y);
        self.gap.infer(&y)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.gap.backward(grad);
        let g = self.s3.backward(&g);
        let g = self.s2.backward(&g);
        self.s1.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.s1.params_mut();
        p.extend(self.s2.params_mut());
        p.extend(self.s3.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.s1.params();
        p.extend(self.s2.params());
        p.extend(self.s3.params());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut b = self.s1.buffers_mut();
        b.extend(self.s2.buffers_mut());
        b.extend(self.s3.buffers_mut());
        b
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        let mut b = self.s1.buffers();
        b.extend(self.s2.buffers());
        b.extend(self.s3.buffers());
        b
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

/// One TSC ResNet block: three conv-BN stages with a (projected) shortcut.
struct ResBlock {
    c1: Conv1d,
    b1: BatchNorm1d,
    r1: Relu,
    c2: Conv1d,
    b2: BatchNorm1d,
    r2: Relu,
    c3: Conv1d,
    b3: BatchNorm1d,
    shortcut: Option<(Conv1d, BatchNorm1d)>,
    out_relu: Relu,
    cached_input: Option<Tensor>,
}

impl ResBlock {
    fn new(cin: usize, cout: usize, rng: &mut StdRng) -> Self {
        Self {
            c1: Conv1d::new(cin, cout, 7, rng),
            b1: BatchNorm1d::new(cout),
            r1: Relu::new(),
            c2: Conv1d::new(cout, cout, 5, rng),
            b2: BatchNorm1d::new(cout),
            r2: Relu::new(),
            c3: Conv1d::new(cout, cout, 3, rng),
            b3: BatchNorm1d::new(cout),
            shortcut: (cin != cout)
                .then(|| (Conv1d::new(cin, cout, 1, rng), BatchNorm1d::new(cout))),
            out_relu: Relu::new(),
            cached_input: None,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.c1.forward(x, train);
        let y = self.b1.forward(&y, train);
        let y = self.r1.forward(&y, train);
        let y = self.c2.forward(&y, train);
        let y = self.b2.forward(&y, train);
        let y = self.r2.forward(&y, train);
        let y = self.c3.forward(&y, train);
        let mut y = self.b3.forward(&y, train);
        let sc = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        y.add_assign(&sc);
        if train {
            self.cached_input = Some(x.clone());
        }
        self.out_relu.forward(&y, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let y = self.c1.infer(x);
        let y = self.b1.infer(&y);
        let y = self.r1.infer(&y);
        let y = self.c2.infer(&y);
        let y = self.b2.infer(&y);
        let y = self.r2.infer(&y);
        let y = self.c3.infer(&y);
        let mut y = self.b3.infer(&y);
        let sc = match &self.shortcut {
            Some((conv, bn)) => bn.infer(&conv.infer(x)),
            None => x.clone(),
        };
        y.add_assign(&sc);
        self.out_relu.infer(&y)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.out_relu.backward(grad);
        // Main path.
        let gm = self.b3.backward(&g);
        let gm = self.c3.backward(&gm);
        let gm = self.r2.backward(&gm);
        let gm = self.b2.backward(&gm);
        let gm = self.c2.backward(&gm);
        let gm = self.r1.backward(&gm);
        let gm = self.b1.backward(&gm);
        let mut gx = self.c1.backward(&gm);
        // Shortcut path.
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = bn.backward(&g);
                conv.backward(&s)
            }
            None => g,
        };
        gx.add_assign(&gs);
        self.cached_input = None;
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.c1.params_mut();
        p.extend(self.b1.params_mut());
        p.extend(self.c2.params_mut());
        p.extend(self.b2.params_mut());
        p.extend(self.c3.params_mut());
        p.extend(self.b3.params_mut());
        if let Some((conv, bn)) = &mut self.shortcut {
            p.extend(conv.params_mut());
            p.extend(bn.params_mut());
        }
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.c1.params();
        p.extend(self.b1.params());
        p.extend(self.c2.params());
        p.extend(self.b2.params());
        p.extend(self.c3.params());
        p.extend(self.b3.params());
        if let Some((conv, bn)) = &self.shortcut {
            p.extend(conv.params());
            p.extend(bn.params());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut b = vec![
            &mut self.b1.running_mean,
            &mut self.b1.running_var,
            &mut self.b2.running_mean,
            &mut self.b2.running_var,
            &mut self.b3.running_mean,
            &mut self.b3.running_var,
        ];
        if let Some((_, bn)) = &mut self.shortcut {
            b.push(&mut bn.running_mean);
            b.push(&mut bn.running_var);
        }
        b
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        let mut b = vec![
            &self.b1.running_mean,
            &self.b1.running_var,
            &self.b2.running_mean,
            &self.b2.running_var,
            &self.b3.running_mean,
            &self.b3.running_var,
        ];
        if let Some((_, bn)) = &self.shortcut {
            b.push(&bn.running_mean);
            b.push(&bn.running_var);
        }
        b
    }
}

/// The TSC ResNet encoder (three residual blocks + GAP).
pub struct ResNetEncoder {
    blocks: Vec<ResBlock>,
    gap: Gap,
    dim: usize,
}

impl ResNetEncoder {
    fn new(width: usize, rng: &mut StdRng) -> Self {
        let (c1, c2) = (width, 2 * width);
        Self {
            blocks: vec![
                ResBlock::new(1, c1, rng),
                ResBlock::new(c1, c2, rng),
                ResBlock::new(c2, c2, rng),
            ],
            gap: Gap::new(),
            dim: c2,
        }
    }
}

impl Encoder for ResNetEncoder {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        for b in &mut self.blocks {
            y = b.forward(&y, train);
        }
        self.gap.forward(&y, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for b in &self.blocks {
            y = b.infer(&y);
        }
        self.gap.infer(&y)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = self.gap.backward(grad);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            out.extend(b.buffers_mut());
        }
        out
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        let mut out = Vec::new();
        for b in &self.blocks {
            out.extend(b.buffers());
        }
        out
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }
}

// ---------------------------------------------------------------------------
// InceptionTime
// ---------------------------------------------------------------------------

/// Stride-1, same-length max pooling of width 3 (the inception pool path).
struct MaxPool3Same {
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
}

impl MaxPool3Same {
    fn new() -> Self {
        Self {
            argmax: None,
            in_shape: None,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let mut y = Tensor::zeros(&[n, c, l]);
        let mut argmax = vec![0usize; n * c * l];
        for ni in 0..n {
            let xb = x.batch(ni);
            let yb = y.batch_mut(ni);
            for ci in 0..c {
                let row = &xb[ci * l..(ci + 1) * l];
                for t in 0..l {
                    let lo = t.saturating_sub(1);
                    let hi = (t + 2).min(l);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = lo;
                    for (i, &v) in row[lo..hi].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = lo + i;
                        }
                    }
                    yb[ci * l + t] = best;
                    argmax[(ni * c + ci) * l + t] = best_i;
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some(x.shape().to_vec());
        }
        y
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let mut y = Tensor::zeros(&[n, c, l]);
        for ni in 0..n {
            let xb = x.batch(ni);
            let yb = y.batch_mut(ni);
            for ci in 0..c {
                let row = &xb[ci * l..(ci + 1) * l];
                for t in 0..l {
                    let lo = t.saturating_sub(1);
                    let hi = (t + 2).min(l);
                    let mut best = f32::NEG_INFINITY;
                    for &v in &row[lo..hi] {
                        if v > best {
                            best = v;
                        }
                    }
                    yb[ci * l + t] = best;
                }
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let argmax = self.argmax.take().expect("backward without forward");
        let shape = self.in_shape.take().expect("backward without forward");
        let (n, c, l) = (shape[0], shape[1], shape[2]);
        let mut gx = Tensor::zeros(&shape);
        for ni in 0..n {
            let gb = grad.batch(ni);
            let ob = gx.batch_mut(ni);
            for ci in 0..c {
                for t in 0..l {
                    ob[ci * l + argmax[(ni * c + ci) * l + t]] += gb[ci * l + t];
                }
            }
        }
        gx
    }
}

/// Concatenates rank-3 tensors along the channel axis.
fn concat_channels(parts: &[Tensor]) -> Tensor {
    let n = parts[0].dim(0);
    let l = parts[0].dim(2);
    let c_total: usize = parts.iter().map(|p| p.dim(1)).sum();
    let mut out = Tensor::zeros(&[n, c_total, l]);
    for ni in 0..n {
        let ob = out.batch_mut(ni);
        let mut offset = 0;
        for p in parts {
            let c = p.dim(1);
            ob[offset * l..(offset + c) * l].copy_from_slice(p.batch(ni));
            offset += c;
        }
    }
    out
}

/// Splits a channel-gradient back into per-part gradients.
fn split_channels(grad: &Tensor, widths: &[usize]) -> Vec<Tensor> {
    let n = grad.dim(0);
    let l = grad.dim(2);
    let mut outs: Vec<Tensor> = widths.iter().map(|&c| Tensor::zeros(&[n, c, l])).collect();
    for ni in 0..n {
        let gb = grad.batch(ni);
        let mut offset = 0;
        for (o, &c) in outs.iter_mut().zip(widths) {
            o.batch_mut(ni)
                .copy_from_slice(&gb[offset * l..(offset + c) * l]);
            offset += c;
        }
    }
    outs
}

/// One inception module: bottleneck → three kernel scales ∥ pooled 1×1 path,
/// concatenated, batch-normed, ReLU.
struct InceptionModule {
    bottleneck: Option<Conv1d>,
    convs: Vec<Conv1d>,
    pool: MaxPool3Same,
    pool_conv: Conv1d,
    bn: BatchNorm1d,
    relu: Relu,
    f: usize,
}

impl InceptionModule {
    fn new(cin: usize, f: usize, rng: &mut StdRng) -> Self {
        let bottleneck = (cin > 1).then(|| Conv1d::new(cin, f, 1, rng));
        let bc = if cin > 1 { f } else { 1 };
        Self {
            bottleneck,
            convs: [5usize, 11, 21]
                .iter()
                .map(|&k| Conv1d::new(bc, f, k, rng))
                .collect(),
            pool: MaxPool3Same::new(),
            pool_conv: Conv1d::new(cin, f, 1, rng),
            bn: BatchNorm1d::new(4 * f),
            relu: Relu::new(),
            f,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let b = match &mut self.bottleneck {
            Some(conv) => conv.forward(x, train),
            None => x.clone(),
        };
        let mut parts: Vec<Tensor> = self
            .convs
            .iter_mut()
            .map(|c| c.forward(&b, train))
            .collect();
        let pooled = self.pool.forward(x, train);
        parts.push(self.pool_conv.forward(&pooled, train));
        let y = concat_channels(&parts);
        let y = self.bn.forward(&y, train);
        self.relu.forward(&y, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let b = match &self.bottleneck {
            Some(conv) => conv.infer(x),
            None => x.clone(),
        };
        let mut parts: Vec<Tensor> = self.convs.iter().map(|c| c.infer(&b)).collect();
        let pooled = self.pool.infer(x);
        parts.push(self.pool_conv.infer(&pooled));
        let y = concat_channels(&parts);
        let y = self.bn.infer(&y);
        self.relu.infer(&y)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.relu.backward(grad);
        let g = self.bn.backward(&g);
        let widths = vec![self.f; 4];
        let parts = split_channels(&g, &widths);
        // Pool path.
        let gp = self.pool_conv.backward(&parts[3]);
        let mut gx = self.pool.backward(&gp);
        // Conv paths through the bottleneck.
        let mut gb: Option<Tensor> = None;
        for (conv, gpart) in self.convs.iter_mut().zip(&parts[..3]) {
            let g = conv.backward(gpart);
            match &mut gb {
                Some(acc) => acc.add_assign(&g),
                None => gb = Some(g),
            }
        }
        let gb = gb.expect("three conv paths");
        match &mut self.bottleneck {
            Some(conv) => gx.add_assign(&conv.backward(&gb)),
            None => gx.add_assign(&gb),
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        if let Some(b) = &mut self.bottleneck {
            p.extend(b.params_mut());
        }
        for c in &mut self.convs {
            p.extend(c.params_mut());
        }
        p.extend(self.pool_conv.params_mut());
        p.extend(self.bn.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        if let Some(b) = &self.bottleneck {
            p.extend(b.params());
        }
        for c in &self.convs {
            p.extend(c.params());
        }
        p.extend(self.pool_conv.params());
        p.extend(self.bn.params());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.bn.running_mean, &mut self.bn.running_var]
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        vec![&self.bn.running_mean, &self.bn.running_var]
    }
}

/// InceptionTime-style encoder: two modules with a residual shortcut + GAP.
pub struct InceptionEncoder {
    m1: InceptionModule,
    m2: InceptionModule,
    shortcut_conv: Conv1d,
    shortcut_bn: BatchNorm1d,
    out_relu: Relu,
    gap: Gap,
    dim: usize,
}

impl InceptionEncoder {
    fn new(width: usize, rng: &mut StdRng) -> Self {
        let f = (width / 2).max(4);
        let m1 = InceptionModule::new(1, f, rng);
        let m2 = InceptionModule::new(4 * f, f, rng);
        Self {
            shortcut_conv: Conv1d::new(1, 4 * f, 1, rng),
            shortcut_bn: BatchNorm1d::new(4 * f),
            out_relu: Relu::new(),
            gap: Gap::new(),
            dim: 4 * f,
            m1,
            m2,
        }
    }
}

impl Encoder for InceptionEncoder {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y1 = self.m1.forward(x, train);
        let mut y2 = self.m2.forward(&y1, train);
        let s = self.shortcut_conv.forward(x, train);
        let s = self.shortcut_bn.forward(&s, train);
        y2.add_assign(&s);
        let y = self.out_relu.forward(&y2, train);
        self.gap.forward(&y, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let y1 = self.m1.infer(x);
        let mut y2 = self.m2.infer(&y1);
        let s = self.shortcut_conv.infer(x);
        let s = self.shortcut_bn.infer(&s);
        y2.add_assign(&s);
        let y = self.out_relu.infer(&y2);
        self.gap.infer(&y)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.gap.backward(grad);
        let g = self.out_relu.backward(&g);
        // Residual split.
        let gs = self.shortcut_bn.backward(&g);
        let mut gx = self.shortcut_conv.backward(&gs);
        let gm = self.m2.backward(&g);
        gx.add_assign(&self.m1.backward(&gm));
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.m1.params_mut();
        p.extend(self.m2.params_mut());
        p.extend(self.shortcut_conv.params_mut());
        p.extend(self.shortcut_bn.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.m1.params();
        p.extend(self.m2.params());
        p.extend(self.shortcut_conv.params());
        p.extend(self.shortcut_bn.params());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut b = self.m1.buffers_mut();
        b.extend(self.m2.buffers_mut());
        b.push(&mut self.shortcut_bn.running_mean);
        b.push(&mut self.shortcut_bn.running_var);
        b
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        let mut b = self.m1.buffers();
        b.extend(self.m2.buffers());
        b.push(&self.shortcut_bn.running_mean);
        b.push(&self.shortcut_bn.running_var);
        b
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }
}

// ---------------------------------------------------------------------------
// Transformer (conv stem)
// ---------------------------------------------------------------------------

/// Transposes `(N, C, L) ↔ (N, L, C)`.
fn transpose_cl(x: &Tensor) -> Tensor {
    let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
    let mut out = Tensor::zeros(&[n, l, c]);
    for ni in 0..n {
        let xb = x.batch(ni);
        let ob = out.batch_mut(ni);
        for ci in 0..c {
            for t in 0..l {
                ob[t * c + ci] = xb[ci * l + t];
            }
        }
    }
    out
}

/// One pre-norm transformer block.
struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    ff1: Linear,
    gelu: Gelu,
    ff2: Linear,
    token_shape: Option<Vec<usize>>,
}

impl TransformerBlock {
    fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        Self {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadSelfAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            ff1: Linear::new(dim, 2 * dim, rng),
            gelu: Gelu::new(),
            ff2: Linear::new(2 * dim, dim, rng),
            token_shape: None,
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, t, d) = (x.dim(0), x.dim(1), x.dim(2));
        // x + attn(ln(x))
        let h = self.ln1.forward(x, train);
        let a = self.attn.forward(&h, train);
        let mut y = x.clone();
        y.add_assign(&a);
        // y + ff(ln(y))
        let h2 = self.ln2.forward(&y, train);
        let flat = h2.reshape(&[n * t, d]);
        let f = self.ff1.forward(&flat, train);
        let f = self.gelu.forward(&f, train);
        let f = self.ff2.forward(&f, train).reshape(&[n, t, d]);
        let mut out = y;
        out.add_assign(&f);
        if train {
            self.token_shape = Some(vec![n, t, d]);
        }
        out
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let (n, t, d) = (x.dim(0), x.dim(1), x.dim(2));
        // x + attn(ln(x))
        let h = self.ln1.infer(x);
        let a = self.attn.infer(&h);
        let mut y = x.clone();
        y.add_assign(&a);
        // y + ff(ln(y))
        let h2 = self.ln2.infer(&y);
        let flat = h2.reshape(&[n * t, d]);
        let f = self.ff1.infer(&flat);
        let f = self.gelu.infer(&f);
        let f = self.ff2.infer(&f).reshape(&[n, t, d]);
        let mut out = y;
        out.add_assign(&f);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self.token_shape.take().expect("backward without forward");
        let (n, t, d) = (shape[0], shape[1], shape[2]);
        // FFN residual.
        let gf = self.ff2.backward(&grad.clone().reshape(&[n * t, d]));
        let gf = self.gelu.backward(&gf);
        let gf = self.ff1.backward(&gf);
        let g_h2 = self.ln2.backward(&gf.reshape(&[n, t, d]));
        let mut gy = grad.clone();
        gy.add_assign(&g_h2);
        // Attention residual.
        let ga = self.attn.backward(&gy);
        let g_h1 = self.ln1.backward(&ga);
        let mut gx = gy;
        gx.add_assign(&g_h1);
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.ln2.params_mut());
        p.extend(self.ff1.params_mut());
        p.extend(self.ff2.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.ln1.params();
        p.extend(self.attn.params());
        p.extend(self.ln2.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p
    }
}

/// Conv-stem transformer encoder.
pub struct TransformerEncoder {
    stem_conv: Conv1d,
    stem_relu: Relu,
    stem_pool: MaxPool1d,
    pos: Param,
    blocks: Vec<TransformerBlock>,
    final_ln: LayerNorm,
    dim: usize,
    tokens: usize,
    batch: Option<usize>,
}

impl TransformerEncoder {
    fn new(window: usize, width: usize, rng: &mut StdRng) -> Self {
        let heads = 4;
        let dim = (2 * width).div_ceil(heads) * heads; // divisible by heads
        let pool = 4;
        let tokens = window / pool;
        assert!(tokens >= 2, "window too short for the transformer stem");
        Self {
            stem_conv: Conv1d::new(1, dim, 5, rng),
            stem_relu: Relu::new(),
            stem_pool: MaxPool1d::new(pool),
            pos: Param::new(init::normal(&[tokens, dim], 0.02, rng)),
            blocks: vec![
                TransformerBlock::new(dim, heads, rng),
                TransformerBlock::new(dim, heads, rng),
            ],
            final_ln: LayerNorm::new(dim),
            dim,
            tokens,
            batch: None,
        }
    }
}

impl Encoder for TransformerEncoder {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.dim(0);
        let y = self.stem_conv.forward(x, train);
        let y = self.stem_relu.forward(&y, train);
        let y = self.stem_pool.forward(&y, train); // (N, D, T)
        let mut tokens = transpose_cl(&y); // (N, T, D)
                                           // Add positional embedding.
        let (t, d) = (self.tokens, self.dim);
        for ni in 0..n {
            let tb = tokens.batch_mut(ni);
            for (tv, &pv) in tb.iter_mut().zip(self.pos.value.data()) {
                *tv += pv;
            }
        }
        let mut z = tokens;
        for b in &mut self.blocks {
            z = b.forward(&z, train);
        }
        let z = self.final_ln.forward(&z, train);
        // Mean pool over tokens.
        let mut out = Tensor::zeros(&[n, d]);
        for ni in 0..n {
            let zb = z.batch(ni);
            let o_row = out.row_mut(ni);
            for ti in 0..t {
                for di in 0..d {
                    o_row[di] += zb[ti * d + di] / t as f32;
                }
            }
        }
        if train {
            self.batch = Some(n);
        }
        out
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let n = x.dim(0);
        let y = self.stem_conv.infer(x);
        let y = self.stem_relu.infer(&y);
        let y = self.stem_pool.infer(&y); // (N, D, T)
        let mut tokens = transpose_cl(&y); // (N, T, D)
        let (t, d) = (self.tokens, self.dim);
        for ni in 0..n {
            let tb = tokens.batch_mut(ni);
            for (tv, &pv) in tb.iter_mut().zip(self.pos.value.data()) {
                *tv += pv;
            }
        }
        let mut z = tokens;
        for b in &self.blocks {
            z = b.infer(&z);
        }
        let z = self.final_ln.infer(&z);
        // Mean pool over tokens.
        let mut out = Tensor::zeros(&[n, d]);
        for ni in 0..n {
            let zb = z.batch(ni);
            let o_row = out.row_mut(ni);
            for ti in 0..t {
                for di in 0..d {
                    o_row[di] += zb[ti * d + di] / t as f32;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let n = self.batch.take().expect("backward without forward");
        let (t, d) = (self.tokens, self.dim);
        // Mean-pool backward.
        let mut gz = Tensor::zeros(&[n, t, d]);
        for ni in 0..n {
            let g_row = grad.row(ni);
            let zb = gz.batch_mut(ni);
            for ti in 0..t {
                for di in 0..d {
                    zb[ti * d + di] = g_row[di] / t as f32;
                }
            }
        }
        let mut g = self.final_ln.backward(&gz);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        // Positional embedding gradient: sum over batch.
        for ni in 0..n {
            let gb = g.batch(ni);
            for (pg, &gv) in self.pos.grad.data_mut().iter_mut().zip(gb) {
                *pg += gv;
            }
        }
        // Back through the stem.
        let g = transpose_cl(&g.reshape(&[n, t, d])); // interpret as (N,T,D) → (N,D,T)
        let g = self.stem_pool.backward(&g);
        let g = self.stem_relu.backward(&g);
        self.stem_conv.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.stem_conv.params_mut();
        p.push(&mut self.pos);
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.final_ln.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.stem_conv.params();
        p.push(&self.pos);
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.final_ln.params());
        p
    }

    fn feature_dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(arch: Architecture) {
        let mut enc = arch.build(64, 8, 3);
        let x = Tensor::from_vec(
            &[4, 1, 64],
            (0..256)
                .map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.1)
                .collect(),
        );
        let z = enc.forward(&x, true);
        assert_eq!(z.dim(0), 4);
        assert_eq!(z.dim(1), enc.feature_dim(), "{arch:?}");
        assert!(z.data().iter().all(|v| v.is_finite()), "{arch:?}");
        // Backward runs and produces an input-shaped gradient.
        let g = enc.backward(&Tensor::from_vec(z.shape(), vec![0.1; z.numel()]));
        assert_eq!(g.shape(), x.shape(), "{arch:?}");
        // Some parameter received gradient.
        let got_grad = enc
            .params_mut()
            .iter()
            .any(|p| p.grad.data().iter().any(|&v| v != 0.0));
        assert!(got_grad, "{arch:?} produced no parameter gradients");
    }

    #[test]
    fn convnet_forward_backward() {
        probe(Architecture::ConvNet);
    }

    #[test]
    fn resnet_forward_backward() {
        probe(Architecture::ResNet);
    }

    #[test]
    fn inception_forward_backward() {
        probe(Architecture::InceptionTime);
    }

    #[test]
    fn transformer_forward_backward() {
        probe(Architecture::Transformer);
    }

    #[test]
    fn infer_is_bit_identical_to_eval_forward() {
        // The serving path (`infer`, &self) must reproduce the mutable
        // eval-mode forward exactly — same operations, same order, same bits.
        for arch in Architecture::ALL {
            let mut enc = arch.build(64, 8, 11);
            let x = Tensor::from_vec(
                &[3, 1, 64],
                (0..192)
                    .map(|i| ((i * 17 % 31) as f32 - 15.0) * 0.07)
                    .collect(),
            );
            // One training pass so batch-norm running stats are non-trivial.
            let _ = enc.forward(&x, true);
            let eval = enc.forward(&x, false);
            let infer = enc.infer(&x);
            assert_eq!(eval.data(), infer.data(), "{arch:?}");
        }
    }

    #[test]
    fn encoders_are_send_and_sync() {
        fn check(_: &(dyn Encoder + Send + Sync)) {}
        for arch in Architecture::ALL {
            let enc = arch.build(64, 8, 1);
            check(enc.as_ref());
        }
    }

    #[test]
    fn immutable_accessors_mirror_mutable_ones() {
        for arch in Architecture::ALL {
            let mut enc = arch.build(64, 8, 5);
            assert_eq!(enc.params().len(), enc.params_mut().len(), "{arch:?}");
            assert_eq!(enc.buffers().len(), enc.buffers_mut().len(), "{arch:?}");
        }
    }

    #[test]
    fn names_round_trip() {
        for a in Architecture::ALL {
            assert_eq!(Architecture::from_name(a.name()), Some(a));
        }
        assert_eq!(Architecture::from_name("nope"), None);
    }

    #[test]
    fn training_reduces_probe_loss() {
        // One-step sanity: SGD on a fixed batch lowers a quadratic probe.
        use tsnn::optim::Adam;
        let mut enc = Architecture::ConvNet.build(32, 4, 1);
        let x = Tensor::from_vec(
            &[8, 1, 32],
            (0..256)
                .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.1)
                .collect(),
        );
        let target = Tensor::zeros(&[8, enc.feature_dim()]);
        let mut opt = Adam::new(0.01, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..15 {
            let z = enc.forward(&x, true);
            let out = tsnn::loss::mse(&z, &target, None);
            for p in enc.params_mut() {
                p.zero_grad();
            }
            let _ = enc.backward(&out.grad);
            opt.step(&mut enc.params_mut());
            if first.is_none() {
                first = Some(out.loss);
            }
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.9, "loss {first:?} → {last}");
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec(&[1, 2, 3], (0..6).map(|i| i as f32).collect());
        let b = Tensor::from_vec(&[1, 1, 3], vec![10., 11., 12.]);
        let cat = concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(cat.shape(), &[1, 3, 3]);
        let parts = split_channels(&cat, &[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn transpose_roundtrip() {
        let x = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32).collect());
        let t = transpose_cl(&x);
        assert_eq!(t.shape(), &[2, 4, 3]);
        let back = transpose_cl(&t);
        assert_eq!(back, x);
    }
}
