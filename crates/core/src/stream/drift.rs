//! Deterministic, clock-free drift detection over observation streams.
//!
//! [`DriftMonitor`] watches named scalar channels — vote margins of a
//! deployed selector, raw input samples of a stream — in windows of a
//! fixed *observation count* (never wall-clock time). The first full
//! window of a channel becomes its **reference**: mean and standard
//! deviation via a sequential Welford pass. Every later full window's mean
//! is compared against the reference with a z-score on the standard error
//! of the window mean; crossing the configured threshold raises a typed
//! [`DriftSignal`].
//!
//! Everything is a pure function of the observation sequence: no clocks,
//! no RNG, sequential `f64` arithmetic, channels in a `BTreeMap`. Feeding
//! the same observations in the same order — live or replayed — produces
//! bitwise-identical state and signals, which is what lets the
//! [`super::RetrainDaemon`] replay an append log and land on the same
//! retrain decisions.

use std::collections::BTreeMap;

/// Drift-detection parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// Observations per comparison window (and per reference window).
    pub window: usize,
    /// |z| threshold on the window mean before a signal is raised.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 64,
            threshold: 6.0,
        }
    }
}

/// What kind of distribution a drift signal came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DriftKind {
    /// The deployed selector's decision margins shifted — the model is
    /// less (or differently) certain than it was on the reference window.
    MarginShift,
    /// The raw input distribution shifted (level shift, regime change).
    InputShift,
}

/// A raised drift signal: which channel moved, and by how much.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftSignal {
    /// Channel name (e.g. `margin:kdselector`, `input:sensor-3`).
    pub channel: String,
    /// Distribution kind of the channel.
    pub kind: DriftKind,
    /// Reference window mean.
    pub reference_mean: f64,
    /// The drifted window's mean.
    pub observed_mean: f64,
    /// Signed z-score of the observed mean against the reference
    /// (standard error of the window mean; what crossed the threshold).
    pub zscore: f64,
    /// Total observations on the channel when the signal fired.
    pub observations: u64,
}

/// One channel's running state.
struct Channel {
    kind: DriftKind,
    count: u64,
    /// Reference window accumulation (Welford), frozen once full.
    ref_n: usize,
    ref_mean: f64,
    ref_m2: f64,
    /// Current comparison window.
    cur_sum: f64,
    cur_n: usize,
}

impl Channel {
    fn new(kind: DriftKind) -> Self {
        Self {
            kind,
            count: 0,
            ref_n: 0,
            ref_mean: 0.0,
            ref_m2: 0.0,
            cur_sum: 0.0,
            cur_n: 0,
        }
    }
}

/// Count-windowed drift detection over named channels. See the
/// [module docs](self) for the algorithm and determinism contract.
pub struct DriftMonitor {
    cfg: DriftConfig,
    channels: BTreeMap<String, Channel>,
}

impl DriftMonitor {
    /// New monitor with the given windowing/threshold configuration.
    ///
    /// # Panics
    /// Panics if `cfg.window` is zero or `cfg.threshold` is not positive.
    pub fn new(cfg: DriftConfig) -> Self {
        assert!(cfg.window > 0, "drift window must be positive");
        assert!(
            cfg.threshold > 0.0,
            "drift threshold must be positive, got {}",
            cfg.threshold
        );
        Self {
            cfg,
            channels: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Feeds one observation into `channel` (created with `kind` on first
    /// sight). Returns a signal iff this observation completed a
    /// comparison window whose mean sits more than `threshold` standard
    /// errors from the reference mean.
    pub fn observe(&mut self, channel: &str, kind: DriftKind, x: f64) -> Option<DriftSignal> {
        let w = self.cfg.window;
        let ch = self
            .channels
            .entry(channel.to_string())
            .or_insert_with(|| Channel::new(kind));
        ch.count += 1;
        if ch.ref_n < w {
            // Still building the reference: sequential Welford update.
            ch.ref_n += 1;
            let delta = x - ch.ref_mean;
            ch.ref_mean += delta / ch.ref_n as f64;
            ch.ref_m2 += delta * (x - ch.ref_mean);
            return None;
        }
        ch.cur_sum += x;
        ch.cur_n += 1;
        if ch.cur_n < w {
            return None;
        }
        let observed_mean = ch.cur_sum / w as f64;
        ch.cur_sum = 0.0;
        ch.cur_n = 0;
        // Standard error of a window mean under the reference
        // distribution; floored so a constant reference still yields a
        // finite z-score instead of dividing by zero.
        let ref_var = ch.ref_m2 / (w as f64 - 1.0).max(1.0);
        let se = (ref_var / w as f64).sqrt().max(1e-12);
        let zscore = (observed_mean - ch.ref_mean) / se;
        if zscore.abs() > self.cfg.threshold {
            Some(DriftSignal {
                channel: channel.to_string(),
                kind: ch.kind,
                reference_mean: ch.ref_mean,
                observed_mean,
                zscore,
                observations: ch.count,
            })
        } else {
            None
        }
    }

    /// Feeds a slice of observations; returns every signal raised, in
    /// order.
    pub fn observe_all(&mut self, channel: &str, kind: DriftKind, xs: &[f64]) -> Vec<DriftSignal> {
        xs.iter()
            .filter_map(|&x| self.observe(channel, kind, x))
            .collect()
    }

    /// Total observations fed into `channel` (0 if never seen).
    pub fn observations(&self, channel: &str) -> u64 {
        self.channels.get(channel).map_or(0, |c| c.count)
    }

    /// Channel names, sorted.
    pub fn channels(&self) -> Vec<String> {
        self.channels.keys().cloned().collect()
    }

    /// Drops every channel — references re-anchor on the next
    /// observations. The [`super::RetrainDaemon`] calls this after a
    /// deploy: a new model has a new margin distribution, so comparing it
    /// against the old reference would re-trigger immediately.
    pub fn reset(&mut self) {
        self.channels.clear();
    }
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftMonitor")
            .field("config", &self.cfg)
            .field("channels", &self.channels.len())
            .finish()
    }
}

/// A [`crate::serve::SelectionTap`] adapter feeding served vote margins
/// into a shared [`DriftMonitor`] (channel `margin:<selector>`), for live
/// operational monitoring on the serving path. Raised signals queue up for
/// [`MarginDriftTap::drain`].
///
/// Taps observe in serving-thread call order, so signals from a
/// concurrently-serving engine are *operational* hints, not replayable
/// decisions — a [`super::RetrainDaemon`] makes its replay-deterministic
/// drift decisions on its own ingest path instead.
pub struct MarginDriftTap {
    inner: std::sync::Mutex<(DriftMonitor, Vec<DriftSignal>)>,
}

impl MarginDriftTap {
    /// New tap around a fresh monitor.
    pub fn new(cfg: DriftConfig) -> Self {
        Self {
            inner: std::sync::Mutex::new((DriftMonitor::new(cfg), Vec::new())),
        }
    }

    /// Takes every signal raised since the last drain.
    pub fn drain(&self) -> Vec<DriftSignal> {
        std::mem::take(&mut self.inner.lock().unwrap().1)
    }
}

impl crate::serve::SelectionTap for MarginDriftTap {
    fn observe(&self, selector: &str, selections: &[crate::serve::Selection]) {
        let channel = format!("margin:{selector}");
        let mut inner = self.inner.lock().unwrap();
        let (monitor, pending) = &mut *inner;
        for sel in selections {
            if let Some(sig) = monitor.observe(&channel, DriftKind::MarginShift, sel.margin) {
                pending.push(sig);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(window: usize, threshold: f64) -> DriftMonitor {
        DriftMonitor::new(DriftConfig { window, threshold })
    }

    #[test]
    fn stable_stream_raises_no_signal() {
        let mut m = monitor(8, 4.0);
        for i in 0..200 {
            let x = ((i as f64) * 0.73).sin();
            assert!(m.observe("c", DriftKind::InputShift, x).is_none());
        }
        assert_eq!(m.observations("c"), 200);
    }

    #[test]
    fn level_shift_raises_a_typed_signal_at_a_window_boundary() {
        let mut m = monitor(8, 4.0);
        // Reference window around 0, then a jump to 10.
        let mut signals = Vec::new();
        for i in 0..64 {
            let x = if i < 32 {
                (i as f64 * 0.9).sin() * 0.1
            } else {
                10.0
            };
            if let Some(s) = m.observe("c", DriftKind::InputShift, x) {
                signals.push(s);
            }
        }
        assert!(!signals.is_empty(), "level shift must signal");
        let s = &signals[0];
        assert_eq!(s.kind, DriftKind::InputShift);
        assert_eq!(s.channel, "c");
        assert!(s.zscore > 4.0, "z {}", s.zscore);
        assert!(s.observed_mean > s.reference_mean);
        // Signals only fire when a window completes: observation count is
        // a multiple of the window size.
        assert_eq!(s.observations % 8, 0);
    }

    #[test]
    fn constant_reference_still_yields_finite_decisions() {
        let mut m = monitor(4, 4.0);
        for _ in 0..4 {
            assert!(m.observe("c", DriftKind::MarginShift, 1.0).is_none());
        }
        // Identical window: zero deviation, no signal, no NaN.
        for _ in 0..4 {
            let s = m.observe("c", DriftKind::MarginShift, 1.0);
            assert!(s.is_none());
        }
        // Any deviation from a constant reference is a signal.
        let mut last = None;
        for _ in 0..4 {
            last = m.observe("c", DriftKind::MarginShift, 1.001);
        }
        let s = last.expect("deviation from constant reference signals");
        assert!(s.zscore.is_finite());
    }

    #[test]
    fn replay_is_bitwise_identical() {
        let xs: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.37).sin() + if i > 200 { 3.0 } else { 0.0 })
            .collect();
        let run = |xs: &[f64]| {
            let mut m = monitor(16, 5.0);
            m.observe_all("c", DriftKind::InputShift, xs)
        };
        let a = run(&xs);
        let b = run(&xs);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (s, t) in a.iter().zip(&b) {
            assert_eq!(s, t);
            assert_eq!(s.zscore.to_bits(), t.zscore.to_bits());
            assert_eq!(s.observed_mean.to_bits(), t.observed_mean.to_bits());
        }
    }

    #[test]
    fn reset_reanchors_the_reference() {
        let mut m = monitor(4, 4.0);
        for _ in 0..4 {
            m.observe("c", DriftKind::MarginShift, 0.0);
        }
        m.reset();
        assert_eq!(m.observations("c"), 0);
        // Post-reset, 5.0 becomes the new reference — no signal.
        for _ in 0..8 {
            assert!(m.observe("c", DriftKind::MarginShift, 5.0).is_none());
        }
    }

    #[test]
    fn margin_tap_feeds_served_margins() {
        use crate::serve::SelectionTap;
        let tap = MarginDriftTap::new(DriftConfig {
            window: 4,
            threshold: 4.0,
        });
        let sel = |margin: f64| crate::serve::Selection {
            model: tsad_models::ModelId::from_index(0),
            votes: vec![1],
            windows: 1,
            margin,
            degraded: false,
        };
        // Reference window of confident margins, then a collapse.
        tap.observe("kd", &[sel(0.9), sel(0.92), sel(0.88), sel(0.9)]);
        assert!(tap.drain().is_empty(), "reference window only");
        tap.observe("kd", &[sel(0.1), sel(0.12), sel(0.08), sel(0.1)]);
        let signals = tap.drain();
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].kind, DriftKind::MarginShift);
        assert_eq!(signals[0].channel, "margin:kd");
        assert!(signals[0].zscore < -4.0);
        assert!(tap.drain().is_empty(), "drain empties the queue");
    }
}
