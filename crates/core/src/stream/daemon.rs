//! The continuous-retraining daemon: drift or data quota → checkpointed
//! training → hot deploy.
//!
//! [`RetrainDaemon`] closes the loop between ingestion and serving. Every
//! [`RetrainDaemon::ingest`] call appends samples through the daemon's
//! [`StreamIngestor`], publishes the streamed window matrix into the
//! serving cache, feeds the [`DriftMonitor`] (raw input samples, plus the
//! deployed model's per-window decision margins), and — when a drift
//! signal fires or the sample quota since the last retrain is reached —
//! opens a **versioned retrain**: the training corpus is assembled from
//! the retained stream prefixes (reusing the incrementally built window
//! matrices, never re-extracting history), labeled by the configured
//! [`LabelOracle`], and a [`TrainSession`] is created through
//! [`TrainSession::resume_or_start`] under the name
//! `<selector>-v<version>`.
//!
//! Training then advances one epoch per [`RetrainDaemon::step`] call, with
//! a checkpoint saved at every epoch boundary — so the daemon can be
//! killed at any point and a **fresh daemon replaying the same append log
//! against the same store resumes the interrupted session from its
//! checkpoint and produces bitwise-identical weights** (the
//! `tests/stream_loop.rs` contract). When the session completes, the model
//! is persisted, hot-deployed into the live [`SelectorEngine`] under the
//! stable selector name (in-flight requests finish on the old model, the
//! next lookup serves the new one), reloaded as the daemon's own scoring
//! copy, and the drift monitor re-anchors.
//!
//! # Determinism
//!
//! The daemon reads no clock and draws no ambient randomness: its entire
//! state is a function of the append log (the sequence of
//! `(stream, samples)` calls), the configuration, and the training seed.
//! Drift statistics are windowed by observation *count*; margins are
//! scored on the daemon's own ingest path (not through serving-thread
//! taps), so concurrent serving traffic cannot perturb retrain decisions.

use super::drift::{DriftConfig, DriftKind, DriftMonitor, DriftSignal};
use super::ingest::StreamIngestor;
use crate::dataset::{metadata_text, SelectorDataset};
use crate::labels::PerfMatrix;
use crate::manage::SelectorStore;
use crate::serve::SelectorEngine;
use crate::train::{TrainConfig, TrainSession, TrainedSelector};
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};
use tstext::FrozenTextEncoder;

/// Source of per-model performance rows for retraining labels.
///
/// The production implementation is [`DetectorOracle`] (actually runs the
/// 12-detector model set); tests and bootstrap flows substitute synthetic
/// oracles. Implementations must be deterministic functions of the series
/// content — the replay contract extends through labeling.
pub trait LabelOracle: Send + Sync {
    /// The 12-column performance row (AUC-PR per model) for one series.
    fn perf_row(&self, ts: &TimeSeries) -> Vec<f64>;
}

/// [`LabelOracle`] that runs the full detector set via
/// [`crate::labels::score_series`]. Meaningful scores require the series
/// to carry anomaly ground truth; unlabeled live streams score every
/// detector 0.0, so pair this oracle with labeled replay logs.
pub struct DetectorOracle {
    seed: u64,
}

impl DetectorOracle {
    /// New oracle seeding the detector set with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl LabelOracle for DetectorOracle {
    fn perf_row(&self, ts: &TimeSeries) -> Vec<f64> {
        crate::labels::score_series(ts, self.seed)
    }
}

/// What pushed a retrain over the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainReason {
    /// A [`DriftSignal`] fired during the triggering ingest.
    Drift,
    /// `quota` samples arrived since the last retrain started.
    Quota,
}

/// An event the daemon emitted during [`RetrainDaemon::ingest`] or
/// [`RetrainDaemon::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonEvent {
    /// A drift signal fired (also the trigger of a `Drift` retrain).
    Drift(DriftSignal),
    /// A versioned retrain opened.
    RetrainStarted {
        /// The retrain's version (checkpoint name `<selector>-v<version>`).
        version: u32,
        /// What triggered it.
        reason: RetrainReason,
        /// Training windows in the assembled dataset.
        windows: usize,
        /// Epochs already done when the session opened — non-zero exactly
        /// when [`TrainSession::resume_or_start`] found an interrupted
        /// run's checkpoint and resumed it.
        resumed_epochs: usize,
    },
    /// One training epoch ran and its checkpoint was saved.
    EpochCompleted {
        /// The active retrain's version.
        version: u32,
        /// Zero-based epoch index that just ran.
        epoch: usize,
        /// Mean combined loss of the epoch.
        loss: f64,
    },
    /// The retrained model was persisted and hot-deployed.
    Deployed {
        /// The completed retrain's version.
        version: u32,
        /// The stable serving name it was deployed under.
        selector: String,
    },
}

/// Configuration of a [`RetrainDaemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Stable serving name the daemon deploys under (versioned artifacts
    /// are stored as `<selector>-v<n>`).
    pub selector: String,
    /// Window extraction shared by ingestion, training, and serving
    /// (`window.length` must equal the trained window length, which it
    /// does by construction — the daemon trains on its own extraction).
    pub window: WindowConfig,
    /// Training configuration of every retrain (the seed also keys the
    /// frozen metadata encoder).
    pub train: TrainConfig,
    /// Drift detection parameters.
    pub drift: DriftConfig,
    /// New samples since the last retrain start that trigger a `Quota`
    /// retrain.
    pub quota: usize,
    /// Minimum total samples across streams before any retrain may start
    /// (a drift signal on a tiny corpus would train on noise).
    pub min_samples: usize,
    /// Width of the frozen metadata embeddings.
    pub text_dim: usize,
}

/// The in-flight retrain a daemon is stepping through.
struct ActiveRetrain {
    version: u32,
    /// Versioned store name (`<selector>-v<version>`).
    name: String,
    dataset: SelectorDataset,
    session: TrainSession,
}

/// Drift- and quota-triggered continuous retraining over live streams.
/// See the [module docs](self) for the loop and the replay contract.
pub struct RetrainDaemon {
    cfg: DaemonConfig,
    engine: Arc<SelectorEngine>,
    store: SelectorStore,
    oracle: Box<dyn LabelOracle>,
    ingestor: StreamIngestor,
    monitor: DriftMonitor,
    /// The daemon's own copy of the deployed model, used to score new
    /// windows for margin drift (kept separate from the engine's registry
    /// so serving traffic and drift decisions cannot interleave).
    model: Option<TrainedSelector>,
    active: Option<ActiveRetrain>,
    samples_since_retrain: usize,
    version: u32,
}

impl RetrainDaemon {
    /// New daemon feeding `engine` (whose shared window cache, if any, the
    /// ingestor publishes into) and persisting through `store`.
    pub fn new(
        engine: Arc<SelectorEngine>,
        store: SelectorStore,
        oracle: Box<dyn LabelOracle>,
        cfg: DaemonConfig,
    ) -> Self {
        let mut ingestor = StreamIngestor::new(cfg.window);
        if let Some(cache) = engine.window_cache() {
            ingestor = ingestor.with_cache(Arc::clone(cache));
        }
        let monitor = DriftMonitor::new(cfg.drift);
        Self {
            cfg,
            engine,
            store,
            oracle,
            ingestor,
            monitor,
            model: None,
            active: None,
            samples_since_retrain: 0,
            version: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// The ingestor (stream lengths, snapshots, matrices).
    pub fn ingestor(&self) -> &StreamIngestor {
        &self.ingestor
    }

    /// The drift monitor (channel observation counts).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Retrains started so far (the latest version number).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether a retrain is currently in flight (advance it with
    /// [`RetrainDaemon::step`]).
    pub fn is_training(&self) -> bool {
        self.active.is_some()
    }

    /// Appends samples to `stream`: windows them incrementally, publishes
    /// the streamed matrix to the serving cache, observes drift (raw
    /// inputs; plus per-window margins when a model is deployed), and
    /// opens a retrain when drift or the quota says so. Training itself
    /// advances via [`RetrainDaemon::step`] — ingest never blocks on an
    /// epoch.
    pub fn ingest(&mut self, stream: &str, samples: &[f64]) -> std::io::Result<Vec<DaemonEvent>> {
        let mut events = Vec::new();
        let new_windows = self.ingestor.append(stream, samples);
        let _ = self.ingestor.publish(stream);
        self.samples_since_retrain += samples.len();

        let mut drifted = false;
        let input_channel = format!("input:{stream}");
        for &x in samples {
            if let Some(sig) = self
                .monitor
                .observe(&input_channel, DriftKind::InputShift, x)
            {
                drifted = true;
                events.push(DaemonEvent::Drift(sig));
            }
        }
        if let Some(model) = &self.model {
            if !new_windows.is_empty() {
                let values: Vec<Vec<f32>> = new_windows.iter().map(|w| w.values.clone()).collect();
                let margin_channel = format!("margin:{}", self.cfg.selector);
                for row in model.predict_logits(&values) {
                    let margin = logit_margin(&row);
                    if let Some(sig) =
                        self.monitor
                            .observe(&margin_channel, DriftKind::MarginShift, margin)
                    {
                        drifted = true;
                        events.push(DaemonEvent::Drift(sig));
                    }
                }
            }
        }

        if self.active.is_none() && self.ingestor.total_samples() >= self.cfg.min_samples {
            let reason = if drifted {
                Some(RetrainReason::Drift)
            } else if self.samples_since_retrain >= self.cfg.quota {
                Some(RetrainReason::Quota)
            } else {
                None
            };
            if let Some(reason) = reason {
                events.push(self.start_retrain(reason)?);
            }
        }
        Ok(events)
    }

    /// Advances the in-flight retrain by **one epoch** (checkpointing at
    /// the epoch boundary) and, when the session completes, persists the
    /// model, hot-deploys it under the stable selector name, reloads the
    /// daemon's scoring copy, and re-anchors the drift monitor. No-op when
    /// no retrain is active.
    pub fn step(&mut self) -> std::io::Result<Vec<DaemonEvent>> {
        let Some(mut active) = self.active.take() else {
            return Ok(Vec::new());
        };
        let mut events = Vec::new();
        if !active.session.is_complete() {
            let report = active.session.run_epoch(&active.dataset);
            active.session.save_checkpoint(&self.store, &active.name)?;
            events.push(DaemonEvent::EpochCompleted {
                version: active.version,
                epoch: report.epoch,
                loss: report.loss,
            });
        }
        if active.session.is_complete() {
            let (model, _stats) = active.session.finish();
            self.store
                .save(&active.name, &model, "retrained by RetrainDaemon")?;
            self.engine
                .deploy(&self.cfg.selector, model, self.cfg.window)?;
            // The daemon's scoring copy goes through the same store
            // round-trip on every path (live or replay-after-interrupt),
            // so margin observations downstream of a deploy are identical
            // in both.
            self.model = Some(self.store.load(&active.name)?);
            self.monitor.reset();
            events.push(DaemonEvent::Deployed {
                version: active.version,
                selector: self.cfg.selector.clone(),
            });
        } else {
            self.active = Some(active);
        }
        Ok(events)
    }

    /// Steps until no retrain is in flight; returns every event.
    pub fn run_pending(&mut self) -> std::io::Result<Vec<DaemonEvent>> {
        let mut events = Vec::new();
        while self.is_training() {
            events.extend(self.step()?);
        }
        Ok(events)
    }

    /// Opens the next versioned retrain: assembles the corpus, labels it,
    /// and resumes-or-starts the session.
    fn start_retrain(&mut self, reason: RetrainReason) -> std::io::Result<DaemonEvent> {
        self.version += 1;
        self.samples_since_retrain = 0;
        let name = format!("{}-v{}", self.cfg.selector, self.version);
        let dataset = self.build_dataset();
        let (session, _resumed) =
            TrainSession::resume_or_start(&self.store, &name, &dataset, &self.cfg.train)?;
        let event = DaemonEvent::RetrainStarted {
            version: self.version,
            reason,
            windows: dataset.len(),
            resumed_epochs: session.epoch(),
        };
        self.active = Some(ActiveRetrain {
            version: self.version,
            name,
            dataset,
            session,
        });
        Ok(event)
    }

    /// Assembles the retraining dataset from the retained stream prefixes,
    /// reusing the incrementally built window matrices — bitwise-equal to
    /// [`SelectorDataset::build`] over the same snapshots (pinned by a
    /// unit test below) without re-extracting history.
    fn build_dataset(&self) -> SelectorDataset {
        let series = self.ingestor.series();
        let matrices = self.ingestor.matrices();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows: series.iter().map(|ts| self.oracle.perf_row(ts)).collect(),
        };
        let encoder = FrozenTextEncoder::new(self.cfg.text_dim, self.cfg.train.seed);
        let mut windows = Vec::new();
        let mut series_index = Vec::new();
        let mut hard_labels = Vec::new();
        let mut series_perf = Vec::with_capacity(series.len());
        let mut series_knowledge = Vec::with_capacity(series.len());
        for (si, ts) in series.iter().enumerate() {
            let label = perf.best_model(si).index();
            series_perf.push(perf.row(si).to_vec());
            series_knowledge.push(encoder.encode(&metadata_text(ts)));
            for values in &matrices[si] {
                windows.push(values.clone());
                series_index.push(si);
                hard_labels.push(label);
            }
        }
        SelectorDataset {
            windows,
            series_index,
            hard_labels,
            series_perf,
            series_knowledge,
            window_cfg: self.cfg.window,
            text_dim: self.cfg.text_dim,
        }
    }
}

impl std::fmt::Debug for RetrainDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrainDaemon")
            .field("selector", &self.cfg.selector)
            .field("version", &self.version)
            .field("training", &self.active.is_some())
            .field("streams", &self.ingestor.len())
            .field("samples_since_retrain", &self.samples_since_retrain)
            .finish()
    }
}

/// Decision margin of one window's logit row: top-1 minus top-2. Returns
/// 0.0 for rows with fewer than two finite entries.
fn logit_margin(row: &[f32]) -> f64 {
    let (mut top, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for &v in row {
        if v > top {
            second = top;
            top = v;
        } else if v > second {
            second = v;
        }
    }
    if top.is_finite() && second.is_finite() {
        f64::from(top - second)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::prune::PruningStrategy;
    use crate::serve::{SelectRequest, WindowCache};

    /// Synthetic oracle: best model keyed on the series mean sign — a
    /// deterministic function of content, like the contract demands.
    struct MeanOracle;
    impl LabelOracle for MeanOracle {
        fn perf_row(&self, ts: &TimeSeries) -> Vec<f64> {
            let mean = ts.values.iter().sum::<f64>() / ts.len().max(1) as f64;
            let best = if mean >= 0.0 { 0 } else { 1 };
            (0..12).map(|m| if m == best { 0.9 } else { 0.1 }).collect()
        }
    }

    fn daemon_cfg(quota: usize) -> DaemonConfig {
        DaemonConfig {
            selector: "stream-sel".to_string(),
            window: WindowConfig {
                length: 32,
                stride: 32,
                znormalize: true,
            },
            train: TrainConfig {
                arch: Architecture::ConvNet,
                width: 4,
                epochs: 2,
                batch_size: 16,
                lr: 5e-3,
                pruning: PruningStrategy::None,
                ..TrainConfig::default()
            },
            drift: DriftConfig {
                window: 64,
                threshold: 8.0,
            },
            quota,
            min_samples: quota,
            text_dim: 16,
        }
    }

    fn temp_store(tag: &str) -> SelectorStore {
        let dir = std::env::temp_dir().join(format!("kdsel-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SelectorStore::open(dir).unwrap()
    }

    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.21 + phase).sin()).collect()
    }

    #[test]
    fn quota_triggers_train_checkpoint_deploy_and_serving() {
        let store = temp_store("quota");
        let cache = Arc::new(WindowCache::with_byte_budget(32, 1 << 20));
        let engine = Arc::new(SelectorEngine::with_shared_cache(Arc::clone(&cache)));
        let mut daemon = RetrainDaemon::new(
            Arc::clone(&engine),
            store.clone(),
            Box::new(MeanOracle),
            daemon_cfg(256),
        );

        // Below quota: no retrain.
        let events = daemon.ingest("a", &wave(128, 0.0)).unwrap();
        assert!(events
            .iter()
            .all(|e| !matches!(e, DaemonEvent::RetrainStarted { .. })));
        assert!(!daemon.is_training());

        // Quota crossed: retrain v1 opens, steps to completion, deploys.
        let events = daemon.ingest("b", &wave(128, 1.0)).unwrap();
        assert!(matches!(
            events.last(),
            Some(DaemonEvent::RetrainStarted {
                version: 1,
                reason: RetrainReason::Quota,
                resumed_epochs: 0,
                ..
            })
        ));
        assert!(daemon.is_training());
        let events = daemon.run_pending().unwrap();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, DaemonEvent::EpochCompleted { .. }))
                .count(),
            2,
            "one event per configured epoch"
        );
        assert!(matches!(
            events.last(),
            Some(DaemonEvent::Deployed { version: 1, .. })
        ));
        assert_eq!(daemon.version(), 1);

        // The versioned artifacts exist; the engine serves the deployment.
        assert!(store.contains("stream-sel-v1"));
        assert!(store.load_checkpoint("stream-sel-v1").is_ok());
        let batch = vec![daemon.ingestor().snapshot("a").unwrap()];
        let served = engine
            .handle(&SelectRequest::new("stream-sel", batch))
            .unwrap();
        assert_eq!(served.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn input_drift_triggers_a_drift_retrain() {
        let store = temp_store("drift");
        let engine = Arc::new(SelectorEngine::new());
        let mut cfg = daemon_cfg(100_000); // quota far away: drift must act
        cfg.min_samples = 64;
        cfg.drift = DriftConfig {
            window: 32,
            threshold: 6.0,
        };
        let mut daemon = RetrainDaemon::new(
            Arc::clone(&engine),
            store.clone(),
            Box::new(MeanOracle),
            cfg,
        );

        // Stable reference.
        let events = daemon.ingest("s", &wave(96, 0.0)).unwrap();
        assert!(events.is_empty(), "stable stream: no events, {events:?}");
        // Hard level shift: drift signal + drift-reasoned retrain.
        let shifted: Vec<f64> = wave(64, 0.0).iter().map(|v| v + 40.0).collect();
        let events = daemon.ingest("s", &shifted).unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DaemonEvent::Drift(s) if s.kind == DriftKind::InputShift)),
            "{events:?}"
        );
        assert!(matches!(
            events.last(),
            Some(DaemonEvent::RetrainStarted {
                reason: RetrainReason::Drift,
                ..
            })
        ));
        daemon.run_pending().unwrap();
        assert_eq!(daemon.version(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn assembled_dataset_is_bitwise_equal_to_batch_build() {
        let store = temp_store("dataset");
        let engine = Arc::new(SelectorEngine::new());
        let mut daemon = RetrainDaemon::new(
            Arc::clone(&engine),
            store.clone(),
            Box::new(MeanOracle),
            daemon_cfg(1 << 30),
        );
        for chunk in wave(200, 0.0).chunks(37) {
            daemon.ingest("a", chunk).unwrap();
        }
        for chunk in wave(150, 2.0).chunks(11) {
            daemon.ingest("b", chunk).unwrap();
        }

        let incremental = daemon.build_dataset();
        let series = daemon.ingestor().series();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows: series.iter().map(|ts| MeanOracle.perf_row(ts)).collect(),
        };
        let encoder = FrozenTextEncoder::new(16, daemon.config().train.seed);
        let batch = SelectorDataset::build(&series, &perf, daemon.config().window, &encoder);
        assert_eq!(
            incremental.fingerprint(),
            batch.fingerprint(),
            "incrementally assembled dataset must match batch extraction bitwise"
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_retrain_below_min_samples_even_on_drift() {
        let store = temp_store("min");
        let engine = Arc::new(SelectorEngine::new());
        let mut cfg = daemon_cfg(1 << 30);
        cfg.min_samples = 1 << 30;
        cfg.drift = DriftConfig {
            window: 8,
            threshold: 4.0,
        };
        let mut daemon = RetrainDaemon::new(
            Arc::clone(&engine),
            store.clone(),
            Box::new(MeanOracle),
            cfg,
        );
        daemon.ingest("s", &wave(16, 0.0)).unwrap();
        let shifted: Vec<f64> = wave(16, 0.0).iter().map(|v| v + 40.0).collect();
        let events = daemon.ingest("s", &shifted).unwrap();
        assert!(events.iter().any(|e| matches!(e, DaemonEvent::Drift(_))));
        assert!(
            !daemon.is_training(),
            "drift on a tiny corpus must not train"
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
