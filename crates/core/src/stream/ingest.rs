//! Multi-stream incremental ingestion feeding the serving cache.
//!
//! [`StreamIngestor`] owns one [`StreamWindower`] per named stream and
//! accumulates each stream's completed window matrix as samples arrive, so
//! the matrix the serving layer needs is maintained *incrementally* — an
//! append only windows the new samples, never the history. When a shared
//! [`WindowCache`] is attached, [`StreamIngestor::publish`] inserts the
//! accumulated matrix under the stream's current full-prefix content key:
//! because the streamed matrix is bitwise-equal to batch extraction (the
//! [`StreamWindower`] contract), a subsequent
//! [`crate::serve::SelectorEngine`] request over the same prefix *hits*
//! that entry instead of re-windowing the entire stream. Steady-state
//! serving of appended streams therefore pays O(new samples) windowing per
//! append, not O(stream length).
//!
//! Publishes insert a fresh entry per prefix (the content key changes with
//! every append), so pair the cache with
//! [`WindowCache::with_byte_budget`] — stale prefixes are the coldest
//! entries and evict first.

use crate::serve::WindowCache;
use std::collections::BTreeMap;
use std::sync::Arc;
use tsdata::{StreamWindower, TimeSeries, Window, WindowConfig};

/// Per-stream state: the incremental windower plus the accumulated matrix
/// and full sample log (retained for snapshots, cache publishing, and
/// retraining datasets).
struct StreamState {
    samples: Vec<f64>,
    windower: StreamWindower,
    /// Values of every grid window emitted so far.
    grid: Vec<Vec<f32>>,
}

/// Incremental window extraction over many named append-only streams,
/// with optional publishing into a serving [`WindowCache`]. See the
/// [module docs](self).
///
/// Streams are keyed by name in a `BTreeMap`, so every whole-ingestor
/// iteration ([`StreamIngestor::series`], [`StreamIngestor::names`]) is in
/// deterministic name order regardless of arrival order.
pub struct StreamIngestor {
    cfg: WindowConfig,
    cache: Option<Arc<WindowCache>>,
    streams: BTreeMap<String, StreamState>,
}

impl StreamIngestor {
    /// New ingestor extracting with `cfg`, publishing to no cache.
    pub fn new(cfg: WindowConfig) -> Self {
        Self {
            cfg,
            cache: None,
            streams: BTreeMap::new(),
        }
    }

    /// Attaches the serving cache [`StreamIngestor::publish`] inserts into
    /// (share the same `Arc` with the [`crate::serve::SelectorEngine`]).
    pub fn with_cache(mut self, cache: Arc<WindowCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The window configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Appends samples to `stream` (created on first sight, `series_index`
    /// = creation order) and returns the newly completed grid windows —
    /// exactly once each, bitwise-equal to batch extraction over the full
    /// prefix.
    pub fn append(&mut self, stream: &str, samples: &[f64]) -> Vec<Window> {
        let next_index = self.streams.len();
        let cfg = self.cfg;
        let state = self
            .streams
            .entry(stream.to_string())
            .or_insert_with(|| StreamState {
                samples: Vec::new(),
                // Registration order becomes `series_index` on emitted
                // windows.
                windower: StreamWindower::new(next_index, cfg),
                grid: Vec::new(),
            });
        state.samples.extend_from_slice(samples);
        let new = state.windower.append(samples);
        state.grid.extend(new.iter().map(|w| w.values.clone()));
        new
    }

    /// The full window matrix of `stream`'s current prefix (accumulated
    /// grid windows plus the completion window, the batch-extraction
    /// layout a selector scores). `None` for unknown streams.
    pub fn matrix(&self, stream: &str) -> Option<Vec<Vec<f32>>> {
        let state = self.streams.get(stream)?;
        let mut m = state.grid.clone();
        m.extend(state.windower.tail_windows().into_iter().map(|w| w.values));
        Some(m)
    }

    /// A [`TimeSeries`] snapshot of `stream`'s full prefix (id = stream
    /// name, dataset `"stream"`). `None` for unknown streams.
    pub fn snapshot(&self, stream: &str) -> Option<TimeSeries> {
        let state = self.streams.get(stream)?;
        Some(TimeSeries::new(
            stream,
            "stream",
            state.samples.clone(),
            vec![],
        ))
    }

    /// Publishes `stream`'s accumulated matrix into the attached cache
    /// under the current prefix's content key, and returns the shared
    /// matrix. A serving request over the same prefix now hits instead of
    /// re-windowing. `None` when no cache is attached, the stream is
    /// unknown, or it is still empty.
    pub fn publish(&self, stream: &str) -> Option<Arc<Vec<Vec<f32>>>> {
        let cache = self.cache.as_ref()?;
        let state = self.streams.get(stream)?;
        if state.samples.is_empty() {
            return None;
        }
        let ts = self.snapshot(stream)?;
        Some(cache.get_or_insert(&ts, &self.cfg, || {
            self.matrix(stream).expect("stream exists")
        }))
    }

    /// Stream names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.streams.keys().cloned().collect()
    }

    /// Full-prefix snapshots of every *non-empty* stream, in name order —
    /// the retraining corpus a [`super::RetrainDaemon`] labels and trains
    /// over.
    pub fn series(&self) -> Vec<TimeSeries> {
        self.streams
            .iter()
            .filter(|(_, s)| !s.samples.is_empty())
            .map(|(name, state)| TimeSeries::new(name, "stream", state.samples.clone(), vec![]))
            .collect()
    }

    /// Full window matrices aligned with [`StreamIngestor::series`] (same
    /// filter, same order) — lets a retraining dataset reuse the
    /// incrementally built windows instead of re-extracting history.
    pub fn matrices(&self) -> Vec<Vec<Vec<f32>>> {
        self.streams
            .iter()
            .filter(|(_, s)| !s.samples.is_empty())
            .map(|(name, _)| self.matrix(name).expect("stream exists"))
            .collect()
    }

    /// Samples appended to `stream` so far (0 for unknown streams).
    pub fn stream_len(&self, stream: &str) -> usize {
        self.streams.get(stream).map_or(0, |s| s.samples.len())
    }

    /// Total samples appended across all streams.
    pub fn total_samples(&self) -> usize {
        self.streams.values().map(|s| s.samples.len()).sum()
    }

    /// Number of streams seen.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no stream has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

impl std::fmt::Debug for StreamIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngestor")
            .field("streams", &self.streams.len())
            .field("total_samples", &self.total_samples())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::extract_windows;

    fn cfg() -> WindowConfig {
        WindowConfig {
            length: 16,
            stride: 8,
            znormalize: true,
        }
    }

    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.23 + phase).sin()).collect()
    }

    #[test]
    fn matrix_equals_batch_extraction_at_every_append() {
        let mut ing = StreamIngestor::new(cfg());
        let samples = wave(200, 0.0);
        let mut fed = 0;
        for chunk in samples.chunks(23) {
            ing.append("s0", chunk);
            fed += chunk.len();
            let ts = TimeSeries::new("s0", "stream", samples[..fed].to_vec(), vec![]);
            let reference: Vec<Vec<f32>> = extract_windows(&ts, 0, &cfg())
                .into_iter()
                .map(|w| w.values)
                .collect();
            assert_eq!(ing.matrix("s0").unwrap(), reference, "prefix {fed}");
        }
    }

    #[test]
    fn streams_get_stable_indices_and_sorted_iteration() {
        let mut ing = StreamIngestor::new(cfg());
        // Arrival order z, a — indices stick to arrival, iteration sorts.
        let wz = ing.append("z", &wave(20, 0.0));
        let wa = ing.append("a", &wave(20, 1.0));
        assert_eq!(wz[0].series_index, 0);
        assert_eq!(wa[0].series_index, 1);
        assert_eq!(ing.names(), vec!["a".to_string(), "z".to_string()]);
        let series = ing.series();
        assert_eq!(series[0].id, "a");
        assert_eq!(series[1].id, "z");
        assert_eq!(ing.matrices().len(), 2);
        assert_eq!(ing.total_samples(), 40);
    }

    #[test]
    fn publish_makes_the_serving_lookup_hit() {
        let cache = Arc::new(WindowCache::with_byte_budget(64, 1 << 20));
        let mut ing = StreamIngestor::new(cfg()).with_cache(Arc::clone(&cache));
        ing.append("s0", &wave(120, 0.0));
        let published = ing.publish("s0").expect("published");
        // A serving-path lookup over the same prefix must hit the entry.
        let ts = ing.snapshot("s0").unwrap();
        let served = cache.get_or_insert(&ts, &cfg(), || panic!("must hit, not re-window"));
        assert!(Arc::ptr_eq(&published, &served));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // Append + republish: new prefix, new entry; old one stays until
        // evicted, and the new lookup hits again.
        ing.append("s0", &wave(40, 7.0));
        let republished = ing.publish("s0").expect("published");
        assert!(!Arc::ptr_eq(&published, &republished));
        let ts = ing.snapshot("s0").unwrap();
        let served = cache.get_or_insert(&ts, &cfg(), || panic!("must hit"));
        assert!(Arc::ptr_eq(&republished, &served));
    }

    #[test]
    fn unknown_and_empty_streams_are_none() {
        let mut ing = StreamIngestor::new(cfg());
        assert!(ing.matrix("ghost").is_none());
        assert!(ing.snapshot("ghost").is_none());
        assert!(ing.publish("ghost").is_none());
        assert_eq!(ing.stream_len("ghost"), 0);
        // A stream created by an empty append exists but yields nothing.
        ing.append("hollow", &[]);
        assert_eq!(ing.len(), 1);
        assert!(ing.series().is_empty(), "empty streams are filtered");
        assert!(ing.publish("hollow").is_none());
    }
}
