//! Streaming ingestion and drift-triggered continuous retraining.
//!
//! Offline, the KDSelector pipeline is batch-shaped: collect series, run
//! the detectors for labels, train a selector, deploy it. This module
//! keeps that loop running *while data keeps arriving*:
//!
//! * [`StreamIngestor`] ([`ingest`]) — incremental window extraction over
//!   many named append-only streams, bitwise-identical to re-running
//!   batch extraction on each full prefix, publishing the accumulated
//!   matrices into the serving [`crate::serve::WindowCache`] so
//!   steady-state appends never re-window history;
//! * [`DriftMonitor`] ([`drift`]) — deterministic, clock-free drift
//!   detection over named observation channels (raw inputs, the deployed
//!   selector's decision margins), windowed by observation **count** and
//!   emitting typed [`DriftSignal`]s; [`MarginDriftTap`] adapts it to the
//!   serving-side [`crate::serve::SelectionTap`] hook;
//! * [`RetrainDaemon`] ([`daemon`]) — on drift or a data quota, assembles
//!   a training corpus from the retained prefixes (labels via a
//!   [`LabelOracle`]), drives a checkpointed
//!   [`crate::train::TrainSession`] one epoch per step under a versioned
//!   name, and hot-deploys the result into the live
//!   [`crate::serve::SelectorEngine`].
//!
//! # The replay contract
//!
//! Everything here is a pure function of the append log: no wall-clock,
//! no ambient randomness, `BTreeMap` iteration everywhere. Replaying the
//! same `(stream, samples)` sequence — even after killing the daemon
//! mid-training and starting a fresh one against the same store —
//! reproduces windows, drift signals, datasets, checkpoints, weights and
//! selections **bitwise**, at any `KD_THREADS`. `tests/stream_loop.rs`
//! pins this end to end.

pub mod daemon;
pub mod drift;
pub mod ingest;

pub use daemon::{
    DaemonConfig, DaemonEvent, DetectorOracle, LabelOracle, RetrainDaemon, RetrainReason,
};
pub use drift::{DriftConfig, DriftKind, DriftMonitor, DriftSignal, MarginDriftTap};
pub use ingest::StreamIngestor;
