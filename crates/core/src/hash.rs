//! The crate's shared word-wise FNV-1a kernel.
//!
//! Both content-addressed paths — the serving layer's window-cache key
//! ([`crate::serve::cache`]) and the training checkpoint's dataset
//! fingerprint ([`crate::dataset::SelectorDataset::fingerprint`]) — hash
//! 64-bit words through this one function, so the constants and the
//! xor-multiply order can never drift apart between them. Word-wise (one
//! xor-multiply per value, not per byte) because hashing sits on hot
//! paths; 64 bits of state makes accidental collisions astronomically
//! unlikely, but like any non-cryptographic hash it is not proof against
//! adversarially crafted payloads.

/// FNV-1a 64-bit offset basis — the initial `state`.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into the running FNV-1a state.
#[inline]
pub(crate) fn fnv1a_mix(state: &mut u64, v: u64) {
    *state ^= v;
    *state = state.wrapping_mul(FNV_PRIME);
}

/// Byte-wise FNV-1a over a string — the textbook variant, used where the
/// *distribution* of the low-order bits matters (consistent-hash ring
/// placement, deterministic backoff jitter seeds) rather than raw
/// throughput. Byte-wise, unlike [`fnv1a_mix`], because selector names are
/// short and a per-byte avalanche spreads single-character differences
/// across the whole state.
#[inline]
pub(crate) fn fnv1a_str(s: &str) -> u64 {
    let mut state = FNV_OFFSET;
    for b in s.bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// SplitMix64 finaliser: avalanches a word so every output bit depends on
/// every input bit. FNV-1a of short strings concentrates its entropy in
/// the low-order bits (each byte feeds one xor-multiply); consumers that
/// *order* or *partition* by the full 64-bit value — the consistent-hash
/// ring, jitter derivation — must pass the state through this first.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_fnv1a_sequence() {
        // One word hashed from the offset basis: (offset ^ v) * prime.
        let mut h = FNV_OFFSET;
        fnv1a_mix(&mut h, 42);
        assert_eq!(h, (FNV_OFFSET ^ 42).wrapping_mul(FNV_PRIME));
        // Order-sensitive: [1, 2] and [2, 1] diverge.
        let (mut a, mut b) = (FNV_OFFSET, FNV_OFFSET);
        fnv1a_mix(&mut a, 1);
        fnv1a_mix(&mut a, 2);
        fnv1a_mix(&mut b, 2);
        fnv1a_mix(&mut b, 1);
        assert_ne!(a, b);
    }
}
