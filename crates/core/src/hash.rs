//! The crate's shared word-wise FNV-1a kernel.
//!
//! Both content-addressed paths — the serving layer's window-cache key
//! ([`crate::serve::cache`]) and the training checkpoint's dataset
//! fingerprint ([`crate::dataset::SelectorDataset::fingerprint`]) — hash
//! 64-bit words through this one function, so the constants and the
//! xor-multiply order can never drift apart between them. Word-wise (one
//! xor-multiply per value, not per byte) because hashing sits on hot
//! paths; 64 bits of state makes accidental collisions astronomically
//! unlikely, but like any non-cryptographic hash it is not proof against
//! adversarially crafted payloads.

/// FNV-1a 64-bit offset basis — the initial `state`.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into the running FNV-1a state.
#[inline]
pub(crate) fn fnv1a_mix(state: &mut u64, v: u64) {
    *state ^= v;
    *state = state.wrapping_mul(FNV_PRIME);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_fnv1a_sequence() {
        // One word hashed from the offset basis: (offset ^ v) * prime.
        let mut h = FNV_OFFSET;
        fnv1a_mix(&mut h, 42);
        assert_eq!(h, (FNV_OFFSET ^ 42).wrapping_mul(FNV_PRIME));
        // Order-sensitive: [1, 2] and [2, 1] diverge.
        let (mut a, mut b) = (FNV_OFFSET, FNV_OFFSET);
        fnv1a_mix(&mut a, 1);
        fnv1a_mix(&mut a, 2);
        fnv1a_mix(&mut b, 2);
        fnv1a_mix(&mut b, 1);
        assert_ne!(a, b);
    }
}
