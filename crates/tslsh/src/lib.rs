//! Charikar SimHash locality-sensitive hashing.
//!
//! The PA module of KDSelector buckets training samples whose *values* are
//! similar. Because sample values never change during training, signatures
//! are computed once before the first epoch (§3 of the paper). The scheme is
//! the classic random-hyperplane construction [Charikar, STOC'02]: each of
//! the `b` bits records the sign of the dot product with a random Gaussian
//! hyperplane, so the Hamming distance between signatures estimates the
//! angular distance between samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `b`-bit SimHash signature (b ≤ 64).
pub type Signature = u64;

/// Random-hyperplane SimHash for dense `f32`/`f64` vectors.
#[derive(Debug, Clone)]
pub struct SimHash {
    /// One hyperplane per bit, each of length `dim`.
    hyperplanes: Vec<Vec<f64>>,
    dim: usize,
}

impl SimHash {
    /// Creates a hasher with `bits` hyperplanes for `dim`-dimensional input.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or exceeds 64, or if `dim` is 0.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        assert!(dim > 0, "dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let hyperplanes = (0..bits)
            .map(|_| (0..dim).map(|_| gaussian(&mut rng)).collect())
            .collect();
        Self { hyperplanes, dim }
    }

    /// Number of signature bits.
    pub fn bits(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hashes a vector to its signature.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn hash(&self, v: &[f64]) -> Signature {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        let mut sig = 0u64;
        for (bit, plane) in self.hyperplanes.iter().enumerate() {
            let dot: f64 = plane.iter().zip(v).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }

    /// Hashes an `f32` vector (the NN substrate stores samples as `f32`).
    pub fn hash_f32(&self, v: &[f32]) -> Signature {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        let mut sig = 0u64;
        for (bit, plane) in self.hyperplanes.iter().enumerate() {
            let dot: f64 = plane.iter().zip(v).map(|(a, &b)| a * b as f64).sum();
            if dot >= 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }
}

/// Hamming distance between two signatures.
pub fn hamming(a: Signature, b: Signature) -> u32 {
    (a ^ b).count_ones()
}

/// Estimated cosine similarity from the Hamming distance of `bits`-bit
/// signatures: `cos(π · d / b)`.
pub fn estimated_cosine(a: Signature, b: Signature, bits: usize) -> f64 {
    let d = hamming(a, b) as f64 / bits as f64;
    (std::f64::consts::PI * d).cos()
}

/// Box–Muller standard Gaussian sample.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_share_signature() {
        let h = SimHash::new(16, 14, 7);
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        assert_eq!(h.hash(&v), h.hash(&v));
    }

    #[test]
    fn scaling_preserves_signature() {
        // SimHash depends only on direction, not magnitude.
        let h = SimHash::new(8, 12, 3);
        let v = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.1, 2.0, -0.7];
        let scaled: Vec<f64> = v.iter().map(|x| x * 42.0).collect();
        assert_eq!(h.hash(&v), h.hash(&scaled));
    }

    #[test]
    fn opposite_vectors_have_max_distance() {
        let h = SimHash::new(8, 16, 11);
        let v = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.1, 2.0, -0.7];
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        assert_eq!(hamming(h.hash(&v), h.hash(&neg)), 16);
    }

    #[test]
    fn near_vectors_collide_more_than_far_vectors() {
        let h = SimHash::new(32, 16, 5);
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let near: Vec<f64> = base.iter().map(|x| x + 0.01).collect();
        let far: Vec<f64> = (0..32).map(|i| (i as f64 * 1.7).cos() * 5.0).collect();
        let d_near = hamming(h.hash(&base), h.hash(&near));
        let d_far = hamming(h.hash(&base), h.hash(&far));
        assert!(d_near < d_far, "near={d_near} far={d_far}");
    }

    #[test]
    fn estimated_cosine_matches_true_cosine_roughly() {
        let h = SimHash::new(64, 64, 123);
        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin() + 0.3).collect();
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        let true_cos = dot / (na * nb);
        let est = estimated_cosine(h.hash(&a), h.hash(&b), 64);
        assert!((true_cos - est).abs() < 0.35, "true={true_cos} est={est}");
    }

    #[test]
    fn f32_and_f64_hashing_agree() {
        let h = SimHash::new(10, 14, 99);
        let v64: Vec<f64> = (0..10).map(|i| i as f64 - 4.5).collect();
        let v32: Vec<f32> = v64.iter().map(|&x| x as f32).collect();
        assert_eq!(h.hash(&v64), h.hash_f32(&v32));
    }

    #[test]
    fn different_seeds_give_different_hyperplanes() {
        let a = SimHash::new(16, 14, 1);
        let b = SimHash::new(16, 14, 2);
        let v: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        // Not guaranteed different in general, but with 14 bits the
        // probability of collision across seeds is negligible.
        assert_ne!(a.hash(&v), b.hash(&v));
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn too_many_bits_panics() {
        let _ = SimHash::new(4, 65, 0);
    }
}
