//! The persistent-pool determinism contract, enforced end to end:
//!
//! 1. **Pool ≡ spawn, bitwise.** Every parallel entry point must produce
//!    bit-identical results on the persistent pool ([`Backend::Pool`]) and
//!    on the pre-pool scoped spawn/join reference ([`Backend::Spawn`]), at
//!    every tested `KD_THREADS` width — checked at the primitive level
//!    (`par_map` / `par_chunks_mut`) and through the `SelectorEngine`
//!    serving path (selector fan-out → tsnn batched layers → GEMM).
//! 2. **Stress.** N concurrent `SelectorEngine` callers × a
//!    `KD_THREADS ∈ {1, 2, 4, 7}` sweep: bit-identical `Selection`s, no
//!    deadlock, with nested parallel regions running inline on executors.
//! 3. **Panic/recovery.** A panicking region propagates to its caller
//!    while a concurrent serving caller is unaffected, and the pool serves
//!    correctly afterwards.
//!
//! Lives in its own integration binary because it mutates the
//! process-global `tspar` thread policy and backend (one test fn so the
//! mutations never interleave).

use kdselector::core::selector::NnSelector;
use kdselector::core::serve::{SelectRequest, Selection, SelectorEngine};
use kdselector::core::train::TrainedSelector;
use kdselector::core::Architecture;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};
use tspar::{Backend, Parallelism};

/// The ISSUE-mandated width sweep.
const WIDTHS: [usize; 4] = [1, 2, 4, 7];
const BACKENDS: [Backend; 2] = [Backend::Pool, Backend::Spawn];

/// Deterministic synthetic series, long enough for several 64-windows.
fn batch(n: usize, len: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|i| {
            TimeSeries::new(
                format!("pool-{i}"),
                format!("D{}", i % 4),
                (0..len)
                    .map(|t| {
                        let x = t as f64 * 0.07 + i as f64 * 1.3;
                        x.sin() + 0.35 * (x * 2.9).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect()
}

/// A pure float task whose bits cannot depend on the executor.
fn float_task(i: usize) -> f64 {
    let x = (i as f64 * 0.13).sin();
    x.mul_add(x, (i as f64 + 1.0).ln())
}

fn test_engine() -> SelectorEngine {
    let window = WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    };
    let engine = SelectorEngine::new();
    for (name, arch, seed) in [
        ("convnet", Architecture::ConvNet, 17),
        ("transformer", Architecture::Transformer, 29),
    ] {
        let model = TrainedSelector::build(arch, 64, 8, seed);
        engine.register(name, Arc::new(NnSelector::new(name, model, window)));
    }
    engine
}

#[test]
fn pool_path_is_bitwise_identical_to_spawn_path() {
    // ---- Primitive level: references computed serially once. ------------
    tspar::set_parallelism(Parallelism::Fixed(1));
    tspar::set_backend(Backend::Pool);
    let map_ref: Vec<f64> = (0..513).map(float_task).collect();
    let chunk_fill = |ci: usize, chunk: &mut [f64]| {
        for (j, x) in chunk.iter_mut().enumerate() {
            *x = float_task(ci * 37 + j) * 0.5;
        }
    };
    let chunks_ref = {
        let mut v = vec![0.0f64; 1001];
        for (ci, chunk) in v.chunks_mut(37).enumerate() {
            chunk_fill(ci, chunk);
        }
        v
    };
    // Nested region reference: an outer map whose body opens an inner map.
    let nested_ref: Vec<f64> = (0..24)
        .map(|i| (0..40).map(|j| float_task(i * 40 + j)).sum::<f64>())
        .collect();

    for &width in &WIDTHS {
        for &backend in &BACKENDS {
            tspar::set_parallelism(Parallelism::Fixed(width));
            tspar::set_backend(backend);
            let tag = format!("width {width}, {backend:?}");

            let got = tspar::par_map(513, float_task);
            assert_eq!(got, map_ref, "par_map diverged at {tag}");

            let mut v = vec![0.0f64; 1001];
            tspar::par_chunks_mut(&mut v, 37, chunk_fill);
            assert_eq!(v, chunks_ref, "par_chunks_mut diverged at {tag}");

            let nested = tspar::par_map(24, |i| {
                tspar::par_map(40, move |j| float_task(i * 40 + j))
                    .iter()
                    .sum::<f64>()
            });
            assert_eq!(nested, nested_ref, "nested regions diverged at {tag}");
        }
    }

    // ---- Serving level: engine Selections across the full matrix. -------
    let engine = test_engine();
    let series = batch(12, 420);
    tspar::set_parallelism(Parallelism::Fixed(1));
    tspar::set_backend(Backend::Pool);
    let reference_conv = engine.select_batch("convnet", &series).unwrap();
    let reference_tf = engine.select_batch("transformer", &series).unwrap();

    for &width in &WIDTHS {
        for &backend in &BACKENDS {
            tspar::set_parallelism(Parallelism::Fixed(width));
            tspar::set_backend(backend);
            let tag = format!("width {width}, {backend:?}");
            assert_eq!(
                engine.select_batch("convnet", &series).unwrap(),
                reference_conv,
                "convnet Selections diverged at {tag}"
            );
            assert_eq!(
                engine.select_batch("transformer", &series).unwrap(),
                reference_tf,
                "transformer Selections diverged at {tag}"
            );
        }
    }

    // ---- Stress: 4 concurrent callers × width sweep, both backends. -----
    // Each caller opens its own selector fan-out region (which nests into
    // batched layers and GEMM); all share one pool and must agree bitwise.
    let request = SelectRequest::new("convnet", series.clone());
    for &width in &WIDTHS {
        for &backend in &BACKENDS {
            tspar::set_parallelism(Parallelism::Fixed(width));
            tspar::set_backend(backend);
            let results: Vec<Vec<Selection>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let engine = &engine;
                        let request = &request;
                        s.spawn(move || engine.handle(request).unwrap())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serving caller"))
                    .collect()
            });
            for (caller, got) in results.iter().enumerate() {
                assert_eq!(
                    got, &reference_conv,
                    "caller {caller} diverged at width {width}, {backend:?}"
                );
            }
        }
    }

    // ---- Panic/recovery: a panicking region next to a serving caller. ---
    tspar::set_parallelism(Parallelism::Fixed(4));
    tspar::set_backend(Backend::Pool);
    std::panic::set_hook(Box::new(|_| {})); // the panics below are deliberate
    std::thread::scope(|s| {
        let panicker = s.spawn(|| {
            for round in 0..8 {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    tspar::par_map(48, |i| {
                        if i == 5 {
                            panic!("deliberate ({round})");
                        }
                        i
                    })
                }));
                assert!(outcome.is_err(), "round {round} must panic");
            }
        });
        let server = s.spawn(|| {
            for _ in 0..8 {
                assert_eq!(
                    engine.handle(&request).unwrap(),
                    reference_conv,
                    "serving caller disturbed by a concurrent panicking region"
                );
            }
        });
        panicker.join().expect("panicking caller thread");
        server.join().expect("serving caller thread");
    });
    let _ = std::panic::take_hook();

    // The pool remains fully usable after captured panics.
    assert_eq!(
        engine.select_batch("convnet", &series).unwrap(),
        reference_conv,
        "pool must serve bit-identically after panic recovery"
    );

    tspar::set_parallelism(Parallelism::Auto);
    tspar::set_backend(Backend::Pool);
}
