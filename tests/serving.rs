//! The serving layer's contract: batched `SelectorEngine` results are
//! bit-identical to the per-series path at any `KD_THREADS` setting, stable
//! under concurrent callers, and preserved exactly by a save → load → serve
//! round trip.
//!
//! Lives in its own integration binary because it mutates the
//! process-global `tspar` thread policy (one test fn so mutations never
//! interleave).

use kdselector::core::manage::SelectorStore;
use kdselector::core::selector::NnSelector;
use kdselector::core::serve::{SelectRequest, SelectorEngine};
use kdselector::core::train::TrainedSelector;
use kdselector::core::Architecture;
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};
use tspar::Parallelism;

mod common;

fn window_cfg() -> WindowConfig {
    WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    }
}

/// Deterministic synthetic series, long enough for several windows.
fn batch(n: usize, len: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|i| {
            TimeSeries::new(
                format!("serve-{i}"),
                format!("D{}", i % 3),
                (0..len)
                    .map(|t| {
                        let x = t as f64 * 0.08 + i as f64;
                        x.sin() + 0.4 * (x * 3.1).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect()
}

#[test]
fn engine_serves_deterministically_and_round_trips() {
    // Two architectures: plain conv stack and the attention path.
    let engine = SelectorEngine::new();
    for (name, arch) in [
        ("convnet", Architecture::ConvNet),
        ("transformer", Architecture::Transformer),
    ] {
        let model = TrainedSelector::build(arch, 64, 8, 17);
        engine.register(name, Arc::new(NnSelector::new(name, model, window_cfg())));
    }
    let series = batch(12, 400);

    // --- Batched vs per-series, across thread counts. -------------------
    tspar::set_parallelism(Parallelism::Fixed(1));
    let serial_conv = engine.select_batch("convnet", &series).unwrap();
    let serial_tf = engine.select_batch("transformer", &series).unwrap();
    // Per-series path at 1 thread: must agree decision for decision.
    let conv = engine.get("convnet").unwrap();
    for (ts, selection) in series.iter().zip(&serial_conv) {
        assert_eq!(selection.model, conv.select(ts), "{}", ts.id);
        assert_eq!(selection.votes, {
            let mut counts = vec![0usize; 12];
            for v in conv.window_votes(ts) {
                counts[v] += 1;
            }
            counts
        });
    }

    for threads in [2, 5, 8] {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        let par_conv = engine.select_batch("convnet", &series).unwrap();
        let par_tf = engine.select_batch("transformer", &series).unwrap();
        assert_eq!(serial_conv, par_conv, "convnet at {threads} threads");
        assert_eq!(serial_tf, par_tf, "transformer at {threads} threads");
    }

    // --- Concurrent callers: N threads serving the same engine. ---------
    tspar::set_parallelism(Parallelism::Fixed(3));
    let request = SelectRequest::new("convnet", series.clone());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = &engine;
                let request = &request;
                s.spawn(move || engine.handle(request).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("serving thread"),
                serial_conv,
                "concurrent serving must match the serial result exactly"
            );
        }
    });
    tspar::set_parallelism(Parallelism::Auto);

    // --- Save → load → serve round trip: bit-identical votes. -----------
    let store_dir = common::temp_cache("serving-store");
    let store = SelectorStore::open(&store_dir).unwrap();
    let conv = engine.get("convnet").unwrap();
    // Scores before the trip (full window-score matrices, not just votes).
    let scores_before: Vec<Vec<Vec<f32>>> = conv.window_scores(&series);
    let nn = TrainedSelector::build(Architecture::ConvNet, 64, 8, 17);
    store.save("roundtrip", &nn, "serving test").unwrap();

    let engine2 = SelectorEngine::new();
    engine2.load(&store, "roundtrip", window_cfg()).unwrap();
    assert_eq!(engine2.names(), vec!["roundtrip"]);
    let reloaded = engine2.get("roundtrip").unwrap();
    let scores_after = reloaded.window_scores(&series);
    assert_eq!(
        scores_before, scores_after,
        "save → load → serve must preserve every logit bit-for-bit"
    );
    assert_eq!(
        engine2.select_batch("roundtrip", &series).unwrap(),
        serial_conv,
        "reloaded selections must match the original engine"
    );

    let _ = std::fs::remove_dir_all(&store_dir);
}
