//! The scratch-arena contract (`core::serve::arena`), end to end:
//!
//! 1. **Pooling never changes results.** Direct serving and the queued,
//!    coalescing front-end produce bitwise-identical `Selection`s with
//!    the arena enabled and disabled, at `KD_THREADS ∈ {1, 4}` — the
//!    buffers it recycles are fully overwritten before every use, so
//!    reuse can only change speed.
//! 2. **Grouped ≡ per-series, bitwise.** The coalescer's one-forward-pass
//!    batch path (`window_scores_refs`) scores exactly what per-series
//!    `series_scores` calls produce.
//! 3. **Steady state is allocation-free.** After one warm-up pass,
//!    re-serving the same request shapes grows no arena buffer:
//!    `kdprof::Counter::ArenaGrowth` stays zero while `ArenaReuse`
//!    advances.
//!
//! Lives in its own integration binary because it flips the
//! process-global arena toggle and `tspar` thread policy (one test fn so
//! the mutations never interleave with other tests).

use kdselector::core::selector::NnSelector;
use kdselector::core::serve::{
    set_arena_enabled, QueueConfig, SelectRequest, Selection, SelectorEngine, ServeQueue,
};
use kdselector::core::train::TrainedSelector;
use kdselector::core::Architecture;
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};
use tspar::Parallelism;

const KD_SWEEP: [usize; 2] = [1, 4];

fn window_cfg() -> WindowConfig {
    WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    }
}

/// Deterministic synthetic series, long enough for several windows.
fn series_pool(n: usize, len: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|i| {
            TimeSeries::new(
                format!("arena-{i}"),
                format!("D{}", i % 3),
                (0..len)
                    .map(|t| {
                        let x = t as f64 * 0.11 + i as f64 * 0.6;
                        x.sin() + 0.35 * (x * 3.1).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect()
}

fn nn_engine() -> Arc<SelectorEngine> {
    let engine = SelectorEngine::new();
    for (name, arch, seed) in [
        ("convnet", Architecture::ConvNet, 41),
        ("transformer", Architecture::Transformer, 53),
    ] {
        let model = TrainedSelector::build(arch, 64, 8, seed);
        let selector = NnSelector::new(name, model, window_cfg());
        engine.register(name, Arc::new(selector));
    }
    Arc::new(engine)
}

/// Mixed-shape request stream: batch sizes cycle 1..=3, selectors
/// alternate so the coalescer sees mergeable runs and boundaries.
fn request_stream(pool: &[TimeSeries], total: usize) -> Vec<SelectRequest> {
    (0..total)
        .map(|i| {
            let size = 1 + i % 3;
            let batch: Vec<TimeSeries> = (0..size)
                .map(|j| pool[(i * 3 + j * 5) % pool.len()].clone())
                .collect();
            let selector = if (i / 2) % 2 == 0 {
                "convnet"
            } else {
                "transformer"
            };
            SelectRequest::new(selector, batch)
        })
        .collect()
}

#[test]
fn arena_pooling_is_invisible_and_allocation_free_after_warmup() {
    let engine = nn_engine();
    let pool = series_pool(8, 320);
    let requests = request_stream(&pool, 16);

    // ---- Reference: arena off, serial, served directly. -----------------
    set_arena_enabled(false);
    tspar::set_parallelism(Parallelism::Fixed(1));
    let expected: Vec<Vec<Selection>> = requests
        .iter()
        .map(|r| engine.handle(r).expect("direct serve"))
        .collect();

    // ---- Sweep: arena {off, on} × KD_THREADS {1, 4}, direct and queued. -
    for arena_on in [false, true] {
        for &threads in &KD_SWEEP {
            set_arena_enabled(arena_on);
            tspar::set_parallelism(Parallelism::Fixed(threads));
            let tag = format!("arena={arena_on}, KD_THREADS={threads}");

            for (i, request) in requests.iter().enumerate() {
                let got = engine.handle(request).expect("direct serve");
                assert_eq!(
                    got, expected[i],
                    "direct request {i} diverged from reference at {tag}"
                );
            }

            let queue = ServeQueue::new(
                Arc::clone(&engine),
                QueueConfig {
                    max_depth: 1024,
                    max_batch: 8,
                },
            );
            // Submit everything up front so the FIFO really holds
            // overlapping traffic for the coalescer, then redeem in order.
            let tickets: Vec<_> = requests
                .iter()
                .map(|r| queue.submit(r.clone()).expect("admitted"))
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let got = ticket.wait().expect("served");
                assert_eq!(
                    got, expected[i],
                    "queued request {i} diverged from reference at {tag}"
                );
            }
            assert_eq!(queue.depth(), 0, "queue fully drained at {tag}");
        }
    }

    // ---- Grouped ≡ per-series, bitwise. ---------------------------------
    set_arena_enabled(true);
    tspar::set_parallelism(Parallelism::Fixed(1));
    let selector = engine.get("convnet").expect("registered");
    let refs: Vec<&TimeSeries> = pool.iter().collect();
    let grouped = selector.window_scores_refs(&refs);
    assert_eq!(grouped.len(), refs.len());
    for (i, ts) in pool.iter().enumerate() {
        assert_eq!(
            grouped[i],
            selector.series_scores(ts),
            "grouped scoring diverged from per-series on series {i}"
        );
    }

    // ---- Zero arena growth after warmup. --------------------------------
    // Serial so every arena take lands on this thread's arena; one pass
    // over the full stream warms each buffer to its high-water mark.
    for request in &requests {
        engine.handle(request).expect("warmup serve");
    }
    kdprof::reset();
    for (i, request) in requests.iter().enumerate() {
        let got = engine.handle(request).expect("steady-state serve");
        assert_eq!(got, expected[i], "steady-state request {i} diverged");
    }
    let growth = kdprof::counter_value(kdprof::Counter::ArenaGrowth);
    let reuse = kdprof::counter_value(kdprof::Counter::ArenaReuse);
    assert_eq!(
        growth, 0,
        "warm arena must satisfy every take from recycled capacity \
         (ArenaGrowth={growth}, ArenaReuse={reuse})"
    );
    assert!(
        reuse > 0,
        "the steady-state pass must actually route scratch through the arena"
    );
}
