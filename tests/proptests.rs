//! Property-based tests over the workspace's core invariants.

use kdselector::core::prune::{PruneState, PruningStrategy};
use kdselector::core::selector::majority_vote;
use kdselector::lsh::{hamming, SimHash};
use kdselector::metrics::{auc_pr, auc_roc};
use kdselector::nn::loss::{cross_entropy, info_nce, softmax_rows};
use kdselector::nn::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng as _;
use tsdata::{extract_windows, AnomalyInterval, AnomalyKind, TimeSeries, WindowConfig};

mod common;
use common::random_tensor;

fn assert_close(fast: &Tensor, slow: &Tensor, what: &str) {
    assert_eq!(fast.shape(), slow.shape(), "{what} shape");
    for (i, (&x, &y)) in fast.data().iter().zip(slow.data()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5,
            "{what} diverges at {i}: blocked {x} vs naive {y}"
        );
    }
}

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 2..200)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn auc_metrics_are_bounded((scores, labels) in scores_and_labels()) {
        let pr = auc_pr(&scores, &labels);
        let roc = auc_roc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&pr), "pr={pr}");
        prop_assert!((0.0..=1.0).contains(&roc), "roc={roc}");
    }

    #[test]
    fn auc_invariant_under_monotone_transform((scores, labels) in scores_and_labels()) {
        let transformed: Vec<f64> = scores.iter().map(|s| s * 3.0 + 10.0).collect();
        let a = auc_pr(&scores, &labels);
        let b = auc_pr(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9);
        let c = auc_roc(&scores, &labels);
        let d = auc_roc(&transformed, &labels);
        prop_assert!((c - d).abs() < 1e-9);
    }

    #[test]
    fn perfect_ranking_maximises_auc(n_pos in 1usize..20, n_neg in 1usize..20) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(10.0 + i as f64);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(-(i as f64));
            labels.push(false);
        }
        prop_assert!((auc_pr(&scores, &labels) - 1.0).abs() < 1e-12);
        prop_assert!((auc_roc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simhash_scale_invariance(v in proptest::collection::vec(-100.0f64..100.0, 8..32),
                                scale in 0.01f64..50.0) {
        let h = SimHash::new(v.len(), 14, 5);
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        prop_assert_eq!(h.hash(&v), h.hash(&scaled));
    }

    #[test]
    fn simhash_hamming_symmetric(a in proptest::collection::vec(-10.0f64..10.0, 16),
                                 b in proptest::collection::vec(-10.0f64..10.0, 16)) {
        let h = SimHash::new(16, 12, 1);
        let (sa, sb) = (h.hash(&a), h.hash(&b));
        prop_assert_eq!(hamming(sa, sb), hamming(sb, sa));
        prop_assert_eq!(hamming(sa, sa), 0);
    }

    #[test]
    fn windows_have_requested_length(len in 10usize..300, wl in 4usize..64, stride in 1usize..32) {
        let ts = TimeSeries::new("p", "D", (0..len).map(|i| i as f64).collect(), vec![]);
        let cfg = WindowConfig { length: wl, stride, znormalize: false };
        let ws = extract_windows(&ts, 0, &cfg);
        prop_assert!(!ws.is_empty());
        for w in &ws {
            prop_assert_eq!(w.values.len(), wl);
        }
        // Tail coverage: the last point of the series is inside some window.
        if len >= wl {
            let covered = ws.iter().any(|w| w.start + wl >= len);
            prop_assert!(covered);
        }
    }

    #[test]
    fn majority_vote_valid_and_permutation_invariant(
        votes in proptest::collection::vec(0usize..12, 1..50)
    ) {
        let winner = majority_vote(&votes, 12);
        prop_assert!(winner < 12);
        let mut reversed = votes.clone();
        reversed.reverse();
        prop_assert_eq!(winner, majority_vote(&reversed, 12));
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 12), 1..8)
    ) {
        let n = rows.len();
        let t = Tensor::from_rows(&rows);
        let s = softmax_rows(&t);
        for i in 0..n {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_rows_sum_to_zero(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 6), 1..8),
        seed in 0usize..6
    ) {
        let n = rows.len();
        let targets: Vec<usize> = (0..n).map(|i| (i + seed) % 6).collect();
        let logits = Tensor::from_rows(&rows);
        let out = cross_entropy(&logits, &targets, None);
        prop_assert!(out.loss >= 0.0);
        for i in 0..n {
            let row_sum: f32 = out.grad.row(i).iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn info_nce_nonnegative(
        zt in proptest::collection::vec(proptest::collection::vec(-3.0f32..3.0, 8), 2..10)
    ) {
        let n = zt.len();
        let zk: Vec<Vec<f32>> =
            zt.iter().map(|r| r.iter().map(|v| v * 0.5 + 0.1).collect()).collect();
        let (loss, per_sample, _, _) =
            info_nce(&Tensor::from_rows(&zt), &Tensor::from_rows(&zk), 0.2, None);
        prop_assert!(loss >= -1e-9, "loss={loss}");
        prop_assert_eq!(per_sample.len(), n);
        prop_assert!(per_sample.iter().all(|&l| l >= -1e-9));
    }

    #[test]
    fn prune_plans_are_valid(n in 10usize..300, ratio in 0.1f64..0.95) {
        let mut st = PruneState::new(
            PruningStrategy::InfoBatch { ratio, anneal: 0.0 },
            None,
            n,
            9,
        );
        let idx: Vec<usize> = (0..n).collect();
        let losses: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        st.record_losses(&idx, &losses);
        let plan = st.plan_epoch(1, 10);
        // Indices unique and in range.
        let mut seen = std::collections::BTreeSet::new();
        for &i in &plan.indices {
            prop_assert!(i < n);
            prop_assert!(seen.insert(i), "duplicate index {i}");
        }
        // Weights are 1 or the rescale factor.
        let rescale = (1.0 / (1.0 - ratio)) as f32;
        for &w in &plan.weights {
            prop_assert!((w - 1.0).abs() < 1e-5 || (w - rescale).abs() < 1e-4);
        }
    }

    #[test]
    fn blocked_kernels_match_naive_reference(
        n in 1usize..48,
        m in 1usize..48,
        k in 1usize..80,
        seed in 0u64..10_000,
    ) {
        // Rectangular and degenerate shapes (dims of 1, non-multiples of
        // the register tile) across all three products.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_tensor(&mut rng, &[n, k]);
        let b = random_tensor(&mut rng, &[k, m]);
        assert_close(&a.matmul(&b), &a.matmul_naive(&b), "matmul");

        let at = random_tensor(&mut rng, &[k, n]); // (k,n)ᵀ × (k,m)
        assert_close(&at.t_matmul(&b), &at.t_matmul_naive(&b), "t_matmul");

        let bt = random_tensor(&mut rng, &[m, k]); // (n,k) × (m,k)ᵀ
        assert_close(&a.matmul_t(&bt), &a.matmul_t_naive(&bt), "matmul_t");
    }

    #[test]
    fn point_labels_match_interval_mass(
        starts in proptest::collection::vec(0usize..180, 0..5),
        len in 1usize..20
    ) {
        let intervals: Vec<AnomalyInterval> = starts
            .iter()
            .map(|&s| AnomalyInterval { start: s, end: s + len, kind: AnomalyKind::Spike })
            .collect();
        let ts = TimeSeries::new("p", "D", vec![0.0; 200], intervals);
        let labeled = ts.point_labels().iter().filter(|&&b| b).count();
        let mass: usize = ts.anomaly_lengths().iter().sum();
        prop_assert_eq!(labeled, mass, "merged intervals must agree with labels");
    }
}
