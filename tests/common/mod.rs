//! Shared fixtures for the integration tests.
//!
//! Builds one tiny — but *real* — pipeline per test binary: the full
//! synthetic benchmark, all 12 detectors run for labels (cached in a
//! process-unique temp dir), window dataset assembled.

// Each integration binary includes this module and uses a subset of it.
#![allow(dead_code)]

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use kdselector::nn::Tensor;
use rand::rngs::StdRng;
use rand::Rng as _;
use std::path::PathBuf;
use tsdata::{BenchmarkConfig, WindowConfig};

/// A shape-filled tensor of uniform values in [-1, 1), for kernel tests.
pub fn random_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..numel).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
    )
}

/// Process-unique cache dir so parallel test binaries do not race.
pub fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kdsel-it-{tag}-{}", std::process::id()))
}

/// A tiny pipeline: 16 train + 14 test series of 400 points, window 32.
pub fn tiny_pipeline(tag: &str) -> Pipeline {
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 1,
        test_series_per_family: 1,
        series_length: 400,
        seed: 13,
    };
    cfg.window = WindowConfig {
        length: 32,
        stride: 32,
        znormalize: true,
    };
    cfg.train = TrainConfig {
        arch: Architecture::ConvNet,
        width: 4,
        epochs: 4,
        batch_size: 32,
        ..TrainConfig::default()
    };
    cfg.cache_dir = temp_cache(tag);
    Pipeline::prepare(cfg).expect("tiny pipeline")
}

/// Removes the cache dir of a tagged pipeline.
pub fn cleanup(tag: &str) {
    let _ = std::fs::remove_dir_all(temp_cache(tag));
}
