//! The queued serving front-end's contract, enforced end to end:
//!
//! 1. **Queued ≡ direct, bitwise.** A request's `Selection`s are identical
//!    whether served directly via `engine.handle`, queued alone
//!    (`max_batch = 1`), or coalesced with arbitrary neighbours
//!    (`max_batch = 8`), under sustained overlapping load from N producer
//!    threads, across `KD_THREADS ∈ {1, 4}`.
//! 2. **Admission control.** A depth-bounded queue rejects the
//!    `max_depth + 1`-th pending request with `ServeError::Overloaded`
//!    (carrying the observed depth) and accepts again after draining.
//! 3. **Window cache.** A cached engine serves bitwise-identically to an
//!    uncached one, and repeat series hit instead of re-extracting; a
//!    byte-budgeted cache thrashing under eviction still serves the same
//!    bits (capacity and budget only cost speed, never results).
//! 4. **Hot swap + failure surfacing.** Selectors can be registered on the
//!    live engine between submits; unknown selectors and panicking
//!    selectors fail the affected tickets without killing the queue.
//!
//! Lives in its own integration binary because it mutates the
//! process-global `tspar` thread policy (one test fn so mutations never
//! interleave). CI additionally runs the whole binary at `KD_THREADS=1`
//! and `KD_THREADS=4` via the matrix legs.

use kdselector::core::selector::{NnSelector, Selector};
use kdselector::core::serve::{
    QueueConfig, SelectRequest, Selection, SelectorEngine, ServeError, ServeQueue, WindowCache,
};
use kdselector::core::train::TrainedSelector;
use kdselector::core::Architecture;
use std::sync::{Arc, Condvar, Mutex};
// kdlint: allow(wallclock): test poll-deadline helper only.
use std::time::{Duration, Instant};
use tsdata::{TimeSeries, WindowConfig};
use tspar::Parallelism;

const KD_SWEEP: [usize; 2] = [1, 4];
const MAX_BATCH_SWEEP: [usize; 2] = [1, 8];
const PRODUCERS: usize = 4;
const REQUESTS_PER_PRODUCER: usize = 8;

fn window_cfg() -> WindowConfig {
    WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    }
}

/// Deterministic synthetic series, long enough for several windows.
fn series_pool(n: usize, len: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|i| {
            TimeSeries::new(
                format!("queue-{i}"),
                format!("D{}", i % 3),
                (0..len)
                    .map(|t| {
                        let x = t as f64 * 0.09 + i as f64 * 0.8;
                        x.sin() + 0.45 * (x * 2.7).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect()
}

fn nn_engine(cache: Option<Arc<WindowCache>>) -> Arc<SelectorEngine> {
    let engine = SelectorEngine::new();
    for (name, arch, seed) in [
        ("convnet", Architecture::ConvNet, 17),
        ("transformer", Architecture::Transformer, 29),
    ] {
        let model = TrainedSelector::build(arch, 64, 8, seed);
        let mut selector = NnSelector::new(name, model, window_cfg());
        if let Some(cache) = &cache {
            selector = selector.with_cache(Arc::clone(cache));
        }
        engine.register(name, Arc::new(selector));
    }
    Arc::new(engine)
}

/// Mixed-shape request stream: sizes cycle 1..=4, selectors alternate in
/// runs so the coalescer sees both mergeable neighbours and boundaries.
fn request_stream(pool: &[TimeSeries]) -> Vec<SelectRequest> {
    let total = PRODUCERS * REQUESTS_PER_PRODUCER;
    (0..total)
        .map(|i| {
            let size = 1 + i % 4;
            let batch: Vec<TimeSeries> = (0..size)
                .map(|j| pool[(i * 3 + j * 5) % pool.len()].clone())
                .collect();
            let selector = if (i / 3) % 2 == 0 {
                "convnet"
            } else {
                "transformer"
            };
            SelectRequest::new(selector, batch)
        })
        .collect()
}

/// A selector that blocks every scoring call until the gate opens — the
/// deterministic way to hold the coalescer mid-batch while producers pile
/// requests into the FIFO.
struct GateSelector {
    open: Mutex<bool>,
    released: Condvar,
}

impl GateSelector {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            released: Condvar::new(),
        })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.released.notify_all();
    }
}

impl Selector for GateSelector {
    fn name(&self) -> &str {
        "gate"
    }

    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        let open = self.open.lock().unwrap();
        drop(self.released.wait_while(open, |o| !*o).unwrap());
        let mut row = vec![0.0f32; 12];
        row[ts.len() % 12] = 1.0;
        vec![row]
    }
}

/// Polls `cond` up to 5s; panics with `what` on timeout so a scheduling bug
/// fails the test instead of hanging CI.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    // kdlint: allow(wallclock): poll deadline so a bug fails, not hangs.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        // kdlint: allow(wallclock): poll deadline check.
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn queued_serving_is_deterministic_bounded_and_recoverable() {
    // ---- References: every request served directly, serially. -----------
    tspar::set_parallelism(Parallelism::Fixed(1));
    let engine = nn_engine(None);
    let pool = series_pool(10, 380);
    let requests = request_stream(&pool);
    let expected: Vec<Vec<Selection>> = requests
        .iter()
        .map(|r| engine.handle(r).expect("direct serve"))
        .collect();

    // ---- Coalescing sweep: N producers × M requests, bitwise ≡ direct. --
    for &threads in &KD_SWEEP {
        for &max_batch in &MAX_BATCH_SWEEP {
            tspar::set_parallelism(Parallelism::Fixed(threads));
            let queue = ServeQueue::new(
                Arc::clone(&engine),
                QueueConfig {
                    max_depth: 1024,
                    max_batch,
                },
            );
            assert_eq!(queue.config().max_batch, max_batch);
            let tag = format!("KD_THREADS={threads}, max_batch={max_batch}");
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..PRODUCERS)
                    .map(|p| {
                        let queue = &queue;
                        let requests = &requests;
                        s.spawn(move || {
                            // Each producer owns every PRODUCERS-th request:
                            // submit them all (so the FIFO really holds
                            // overlapping traffic), then redeem in order.
                            let mine: Vec<usize> =
                                (0..requests.len()).filter(|i| i % PRODUCERS == p).collect();
                            let tickets: Vec<_> = mine
                                .iter()
                                .map(|&i| (i, queue.submit(requests[i].clone()).expect("admitted")))
                                .collect();
                            tickets
                                .into_iter()
                                .map(|(i, t)| (i, t.wait().expect("served")))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, got) in handle.join().expect("producer thread") {
                        assert_eq!(
                            got, expected[i],
                            "request {i} diverged from direct serving at {tag}"
                        );
                    }
                }
            });
            assert_eq!(queue.depth(), 0, "queue fully drained at {tag}");
        }
    }

    // ---- Window cache: cached queue ≡ uncached queue, and repeats hit. --
    tspar::set_parallelism(Parallelism::Fixed(1));
    {
        let cache = Arc::new(WindowCache::new(64));
        let cached_engine = nn_engine(Some(Arc::clone(&cache)));
        let queue = ServeQueue::new(Arc::clone(&cached_engine), QueueConfig::default());
        for pass in 0..2 {
            for (i, request) in requests.iter().enumerate() {
                let got = queue.serve(request.clone()).expect("served");
                assert_eq!(
                    got, expected[i],
                    "cached pass {pass} request {i} diverged from the uncached path"
                );
            }
        }
        let stats = cache.stats();
        // 10 distinct series × 2 selector configs... same window config, so
        // 10 distinct keys; everything after the first sight is a hit.
        assert_eq!(stats.entries, 10, "one entry per distinct series content");
        assert_eq!(stats.misses, 10, "each content extracted exactly once");
        assert!(
            stats.hits > stats.misses,
            "repeat series must hit: {stats:?}"
        );
    }

    // ---- Byte-budgeted cache: thrashing evictions only cost speed. ------
    // Each 380-sample entry holds 11 windows × 64 f32 = 2816 payload
    // bytes; a 6000-byte budget caps the cache at 2 of the 10 distinct
    // entries, so this pass evicts constantly — and must still serve the
    // exact bits of the uncached reference.
    {
        let cache = Arc::new(WindowCache::with_byte_budget(64, 6000));
        let cached_engine = nn_engine(Some(Arc::clone(&cache)));
        let queue = ServeQueue::new(Arc::clone(&cached_engine), QueueConfig::default());
        for (i, request) in requests.iter().enumerate() {
            let got = queue.serve(request.clone()).expect("served");
            assert_eq!(
                got, expected[i],
                "byte-budgeted request {i} diverged from the uncached path"
            );
        }
        let stats = cache.stats();
        assert!(stats.bytes <= 6000, "byte budget enforced: {stats:?}");
        assert!(stats.entries < 10, "budget must force evictions: {stats:?}");
    }

    // ---- Hot swap: register on the live engine between submits. ---------
    {
        let queue = ServeQueue::new(Arc::clone(&engine), QueueConfig::default());
        let late = SelectRequest::new("late-arrival", vec![pool[0].clone()]);
        let err = queue.serve(late.clone()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSelector(ref n) if n == "late-arrival"));
        let model = TrainedSelector::build(Architecture::ConvNet, 64, 8, 17);
        queue.engine().register(
            "late-arrival",
            Arc::new(NnSelector::new("late-arrival", model, window_cfg())),
        );
        let got = queue.serve(late).expect("served after hot swap");
        // Same weights (seed 17) as "convnet": hot-swapped registration
        // serves the same bits.
        assert_eq!(got, engine.select_batch("convnet", &pool[..1]).unwrap());
    }

    // ---- Overload: bounded depth rejects, then recovers after drain. ----
    let gate = GateSelector::new();
    let gated_engine = Arc::new(SelectorEngine::new());
    gated_engine.register("gate", Arc::clone(&gate) as Arc<dyn Selector>);
    let queue = ServeQueue::new(
        Arc::clone(&gated_engine),
        QueueConfig {
            max_depth: 3,
            max_batch: 4,
        },
    );
    let gated_request = |i: usize| SelectRequest::new("gate", vec![pool[i % pool.len()].clone()]);

    // The blocker: claimed by the coalescer, stuck inside series_scores.
    let blocker = queue.submit(gated_request(0)).expect("admitted");
    wait_for("coalescer to claim the blocker", || queue.depth() == 0);

    // Fill the FIFO to the bound while the coalescer is stuck...
    let backlog: Vec<_> = (1..=3)
        .map(|i| queue.submit(gated_request(i)).expect("within bound"))
        .collect();
    assert_eq!(queue.depth(), 3);
    // ...and the next submit must bounce with the observed depth.
    let err = queue.submit(gated_request(4)).unwrap_err();
    assert_eq!(
        err,
        ServeError::Overloaded { depth: 3, limit: 3 },
        "admission control must reject at the bound"
    );
    assert!(err.to_string().contains("overloaded"));

    // Recovery: release the gate, the backlog drains, admissions reopen.
    gate.release();
    assert_eq!(blocker.wait().expect("blocker served").len(), 1);
    for ticket in backlog {
        assert_eq!(ticket.wait().expect("backlog served").len(), 1);
    }
    wait_for("queue to drain", || queue.depth() == 0);
    let reopened = queue.submit(gated_request(5)).expect("admissions reopened");
    assert_eq!(reopened.wait().expect("served after recovery").len(), 1);

    // ---- Panicking selector fails its tickets, queue survives. ----------
    struct PanickySelector;
    impl Selector for PanickySelector {
        fn name(&self) -> &str {
            "panicky"
        }
        fn series_scores(&self, _ts: &TimeSeries) -> Vec<Vec<f32>> {
            panic!("deliberate serve-side panic")
        }
    }
    gated_engine.register("panicky", Arc::new(PanickySelector));
    std::panic::set_hook(Box::new(|_| {})); // the panic below is deliberate
    let err = queue
        .serve(SelectRequest::new("panicky", vec![pool[0].clone()]))
        .unwrap_err();
    let _ = std::panic::take_hook();
    assert!(
        matches!(err, ServeError::Panicked(ref msg) if msg.contains("deliberate")),
        "panic must surface on the ticket: {err:?}"
    );
    let alive = queue.submit(gated_request(6)).expect("queue survived");
    assert_eq!(alive.wait().expect("served after panic").len(), 1);

    // ---- A selector breaking the batch contract fails the group. --------
    struct ShortSelector;
    impl Selector for ShortSelector {
        fn name(&self) -> &str {
            "short"
        }
        fn series_scores(&self, _ts: &TimeSeries) -> Vec<Vec<f32>> {
            unreachable!("batch override below bypasses this")
        }
        // Returns one row fewer than series: the coalescer must refuse to
        // split this across tickets.
        fn window_scores_refs(&self, batch: &[&TimeSeries]) -> Vec<Vec<Vec<f32>>> {
            vec![vec![vec![1.0; 12]]; batch.len().saturating_sub(1)]
        }
    }
    gated_engine.register("short", Arc::new(ShortSelector));
    let err = queue
        .serve(SelectRequest::new(
            "short",
            vec![pool[0].clone(), pool[1].clone()],
        ))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::MalformedOutput {
            expected: 2,
            got: 1
        },
        "short output must fail the group, not misassign results"
    );
    let alive = queue.submit(gated_request(7)).expect("queue survived");
    assert_eq!(
        alive.wait().expect("served after malformed output").len(),
        1
    );

    // ---- Shutdown drains admitted work before the coalescer exits. ------
    // (3 submits = max_depth, so admission cannot bounce even if the
    // coalescer has not claimed anything yet.)
    let tickets: Vec<_> = (0..3)
        .map(|i| queue.submit(gated_request(i)).expect("admitted"))
        .collect();
    drop(queue);
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait().expect("drained on shutdown").len(),
            1,
            "ticket {i} must complete during drain"
        );
    }

    tspar::set_parallelism(Parallelism::Auto);
}
