//! Contract tests: every detector in the model set behaves on every dataset
//! family the benchmark generates.

use kdselector::detectors::{default_model_set, ModelId};
use kdselector::metrics::auc_pr;
use tsdata::benchmark::generate_series;
use tsdata::families::all_families;

#[test]
fn all_detectors_score_all_families_within_bounds() {
    let detectors = default_model_set(3);
    for family in all_families() {
        let ts = generate_series(&family, 400, 99, "contract");
        for d in &detectors {
            let scores = d.score(&ts.values);
            assert_eq!(scores.len(), ts.len(), "{} on {}", d.id(), family.name);
            assert!(
                scores
                    .iter()
                    .all(|&s| (0.0..=1.0).contains(&s) && s.is_finite()),
                "{} on {} out of bounds",
                d.id(),
                family.name
            );
        }
    }
}

#[test]
fn detectors_are_deterministic() {
    let family = &all_families()[2]; // IOPS
    let ts = generate_series(family, 400, 5, "det");
    for d in default_model_set(11) {
        let a = d.score(&ts.values);
        let b = d.score(&ts.values);
        assert_eq!(a, b, "{} not deterministic", d.id());
    }
}

#[test]
fn no_single_model_dominates_every_family() {
    // The premise of model selection: winners differ across the benchmark.
    let detectors = default_model_set(3);
    let mut winners = std::collections::BTreeSet::new();
    for (fi, family) in all_families().iter().enumerate() {
        let ts = generate_series(family, 600, 17 + fi as u64, "dom");
        let labels = ts.point_labels();
        let mut best = (ModelId::IForest, f64::MIN);
        for d in &detectors {
            let pr = auc_pr(&d.score(&ts.values), &labels);
            if pr > best.1 {
                best = (d.id(), pr);
            }
        }
        winners.insert(best.0);
    }
    assert!(
        winners.len() >= 3,
        "expected heterogeneous winners across 16 families, got {winners:?}"
    );
}

#[test]
fn degenerate_inputs_never_panic() {
    for d in default_model_set(0) {
        assert!(d.score(&[]).is_empty(), "{}", d.id());
        let constant = vec![1.0; 50];
        let s = d.score(&constant);
        assert_eq!(s.len(), 50, "{}", d.id());
        let tiny = vec![0.5; 3];
        assert_eq!(d.score(&tiny).len(), 3, "{}", d.id());
    }
}
