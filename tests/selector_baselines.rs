//! The nine baseline selectors of Fig. 4 all train and evaluate end-to-end.

mod common;

use kdselector::core::nonnn::FeatureModel;
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;

#[test]
fn feature_baselines_produce_reports() {
    let pipeline = common::tiny_pipeline("featbase");
    for kind in [
        FeatureModel::Knn,
        FeatureModel::Svc,
        FeatureModel::AdaBoost,
        FeatureModel::RandomForest,
    ] {
        let (report, seconds) = pipeline.run_feature_baseline(kind);
        assert_eq!(report.per_dataset.len(), 14, "{kind:?}");
        assert_eq!(report.selector, kind.name());
        assert!(seconds >= 0.0);
        let avg = report.average_auc_pr();
        assert!((0.0..=1.0).contains(&avg), "{kind:?} avg={avg}");
    }
    common::cleanup("featbase");
}

#[test]
fn rocket_baseline_produces_report() {
    let pipeline = common::tiny_pipeline("rocketbase");
    let (report, _seconds) = pipeline.run_rocket_baseline();
    assert_eq!(report.per_dataset.len(), 14);
    assert_eq!(report.selector, "Rocket");
    common::cleanup("rocketbase");
}

#[test]
fn all_nn_architectures_train_on_the_pipeline() {
    let pipeline = common::tiny_pipeline("archs");
    for arch in Architecture::ALL {
        let cfg = TrainConfig {
            arch,
            epochs: 2,
            ..pipeline.config.train
        };
        let outcome = pipeline.train_nn_with(&cfg, arch.name());
        assert_eq!(outcome.report.per_dataset.len(), 14, "{arch:?}");
        assert!(outcome.stats.train_seconds > 0.0);
    }
    common::cleanup("archs");
}
