//! End-to-end integration: benchmark → labels → training → evaluation →
//! persistence, across crate boundaries.

mod common;

use kdselector::core::manage::SelectorStore;
use kdselector::core::selector::{NnSelector, Selector};
use kdselector::core::train::{MkiConfig, PislConfig, TrainConfig};

#[test]
fn full_pipeline_trains_evaluates_and_round_trips() {
    let pipeline = common::tiny_pipeline("e2e");

    // The benchmark has the paper's shape: 16 train families, 14 test.
    assert_eq!(pipeline.benchmark.train.len(), 16);
    assert_eq!(pipeline.benchmark.test.len(), 14);
    assert_eq!(pipeline.train_perf.len(), 16);
    assert_eq!(pipeline.test_perf.len(), 14);

    // Every perf row has 12 valid AUC-PR values.
    for row in &pipeline.train_perf.rows {
        assert_eq!(row.len(), 12);
        assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    // Train the full KDSelector stack (PISL + MKI) on the tiny dataset.
    let cfg = TrainConfig {
        pisl: Some(PislConfig::default()),
        mki: Some(MkiConfig {
            hidden: 32,
            proj_dim: 16,
            ..MkiConfig::default()
        }),
        ..pipeline.config.train
    };
    let outcome = pipeline.train_nn_with(&cfg, "kd-tiny");
    assert_eq!(outcome.report.per_dataset.len(), 14);
    let avg = outcome.report.average_auc_pr();
    assert!((0.0..=1.0).contains(&avg), "avg={avg}");
    // The selected models' scores can never exceed the oracle.
    assert!(avg <= pipeline.test_perf.oracle_mean() + 1e-9);

    // Losses are finite and positive (monotone decrease is asserted in the
    // core unit tests with a longer budget; 4 epochs on 16 series with the
    // InfoNCE term is too noisy for that here).
    let stats = &outcome.stats;
    assert!(stats.epoch_loss.iter().all(|l| l.is_finite() && *l > 0.0));

    // Persistence round-trip preserves behaviour exactly. Saving takes the
    // selector by shared reference — no exclusive access needed.
    let store_dir = common::temp_cache("e2e-store");
    let store = SelectorStore::open(&store_dir).unwrap();
    let selector = outcome.selector;
    let before: Vec<_> = pipeline
        .benchmark
        .test
        .iter()
        .map(|ts| selector.select(ts))
        .collect();
    store
        .save("roundtrip", &selector.model, "integration")
        .unwrap();
    let loaded = store.load("roundtrip").unwrap();
    let reloaded = NnSelector::new("roundtrip", loaded, pipeline.config.window);
    let after: Vec<_> = pipeline
        .benchmark
        .test
        .iter()
        .map(|ts| reloaded.select(ts))
        .collect();
    assert_eq!(before, after);
    // The batch-first path agrees with the per-series loop.
    assert_eq!(reloaded.select_batch(&pipeline.benchmark.test), after);

    let _ = std::fs::remove_dir_all(&store_dir);
    common::cleanup("e2e");
}

#[test]
fn training_determinism_across_runs() {
    let pipeline = common::tiny_pipeline("det");
    let a = pipeline.train_nn_selector();
    let b = pipeline.train_nn_selector();
    assert_eq!(a.report.selections, b.report.selections);
    assert_eq!(a.stats.epoch_loss, b.stats.epoch_loss);
    common::cleanup("det");
}

#[test]
fn evaluation_never_exceeds_oracle_per_dataset() {
    let pipeline = common::tiny_pipeline("oracle");
    let outcome = pipeline.train_nn_selector();
    // Build the oracle per-dataset means.
    for (ds, auc) in &outcome.report.per_dataset {
        let mut oracle_sum = 0.0;
        let mut n = 0usize;
        for (i, ts) in pipeline.benchmark.test.iter().enumerate() {
            if &ts.dataset == ds {
                oracle_sum += pipeline
                    .test_perf
                    .perf_of(i, pipeline.test_perf.best_model(i));
                n += 1;
            }
        }
        let oracle = oracle_sum / n as f64;
        assert!(*auc <= oracle + 1e-9, "{ds}: {auc} > oracle {oracle}");
    }
    common::cleanup("oracle");
}
