//! Training-session integration: the data-parallel determinism contract
//! (bitwise-identical weights and stats at any `KD_THREADS`), checkpoint
//! round-trips with bitwise continuation, and live deployment of a
//! session-trained selector into a serving engine under concurrent
//! callers.
//!
//! Lives in its own binary because the determinism sweep mutates the
//! process-global `tspar` thread policy (every result asserted here is
//! thread-count-invariant, so concurrently running tests are unaffected).

use kdselector::core::dataset::SelectorDataset;
use kdselector::core::labels::PerfMatrix;
use kdselector::core::manage::SelectorStore;
use kdselector::core::prune::PruningStrategy;
use kdselector::core::serve::SelectorEngine;
use kdselector::core::train::{
    train, MkiConfig, PislConfig, TrainConfig, TrainSession, TrainStats, TrainedSelector,
};
use kdselector::core::Architecture;
use kdselector::nn::serialize::{save_params, StateDict};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tsdata::{Benchmark, BenchmarkConfig, WindowConfig};
use tspar::Parallelism;
use tstext::FrozenTextEncoder;

/// Synthetic-label dataset (no detector runs): 8 series, window 32.
fn toy_dataset(seed: u64) -> SelectorDataset {
    let mut cfg = BenchmarkConfig::tiny();
    cfg.series_length = 320;
    cfg.seed = seed;
    let b = Benchmark::generate(cfg);
    let series: Vec<_> = b.train.into_iter().take(8).collect();
    let rows: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..12)
                .map(|m| if m == i % 4 { 0.85 } else { 0.1 })
                .collect()
        })
        .collect();
    let perf = PerfMatrix {
        series_ids: series.iter().map(|s| s.id.clone()).collect(),
        rows,
    };
    let enc = FrozenTextEncoder::new(48, 0);
    let wc = WindowConfig {
        length: 32,
        stride: 32,
        znormalize: true,
    };
    SelectorDataset::build(&series, &perf, wc, &enc)
}

/// The acceptance configuration: PISL + MKI + PA pruning, 2 data-parallel
/// replicas.
fn dp_cfg() -> TrainConfig {
    TrainConfig {
        arch: Architecture::ConvNet,
        width: 4,
        epochs: 5,
        batch_size: 16,
        lr: 5e-3,
        replicas: 2,
        pisl: Some(PislConfig::default()),
        mki: Some(MkiConfig {
            hidden: 16,
            proj_dim: 8,
            ..MkiConfig::default()
        }),
        pruning: PruningStrategy::Pa {
            ratio: 0.7,
            lsh_bits: 12,
            bins: 4,
            anneal: 0.2,
        },
        ..TrainConfig::default()
    }
}

fn weights_of(model: &TrainedSelector) -> StateDict {
    save_params(&model.params())
}

fn assert_stats_eq(a: &TrainStats, b: &TrainStats, what: &str) {
    assert_eq!(a.epoch_loss, b.epoch_loss, "{what}: epoch losses");
    assert_eq!(a.epoch_accuracy, b.epoch_accuracy, "{what}: accuracies");
    assert_eq!(
        a.epoch_examined, b.epoch_examined,
        "{what}: examined counts"
    );
}

/// The tentpole acceptance pin: a PISL+MKI+PA run with data-parallel
/// replicas produces bitwise-identical `TrainedSelector` weights, buffers
/// and per-epoch `TrainStats` at `KD_THREADS` ∈ {1, 2, 4}.
///
/// One test fn so the global thread-policy mutations never interleave
/// with themselves.
#[test]
fn dp_training_is_bitwise_identical_across_thread_counts() {
    let ds = toy_dataset(11);
    let cfg = dp_cfg();

    let run = |threads: usize| {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        let (model, stats) = train(&ds, &cfg);
        let buffers: Vec<Vec<f32>> = model.buffers().iter().map(|b| b.to_vec()).collect();
        (weights_of(&model), buffers, stats)
    };

    let (w1, b1, s1) = run(1);
    let (w2, b2, s2) = run(2);
    let (w4, b4, s4) = run(4);

    // Also sweep a replica count that does not divide the batch evenly,
    // so short tail partitions cross the reduction too.
    let mut cfg3 = cfg;
    cfg3.replicas = 3;
    let run3 = |threads: usize| {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        let (model, stats) = train(&ds, &cfg3);
        (weights_of(&model), stats)
    };
    let (w3_1, s3_1) = run3(1);
    let (w3_4, s3_4) = run3(4);
    tspar::set_parallelism(Parallelism::Auto);

    assert_eq!(w1, w2, "weights at 1 vs 2 threads");
    assert_eq!(w1, w4, "weights at 1 vs 4 threads");
    assert_eq!(b1, b2, "batch-norm buffers at 1 vs 2 threads");
    assert_eq!(b1, b4, "batch-norm buffers at 1 vs 4 threads");
    assert_stats_eq(&s1, &s2, "1 vs 2 threads");
    assert_stats_eq(&s1, &s4, "1 vs 4 threads");

    assert_eq!(w3_1, w3_4, "replicas=3 weights at 1 vs 4 threads");
    assert_stats_eq(&s3_1, &s3_4, "replicas=3, 1 vs 4 threads");

    // The replica count itself is part of the configuration: 2 and 3
    // replicas see different micro-batch statistics, so they are
    // (deterministically) different runs. Guard that the sweep above is
    // not vacuously comparing identical code paths.
    assert_ne!(
        w1, w3_1,
        "different replica counts must change micro-batch statistics"
    );
}

/// Satellite pin: save at epoch k, resume, and epochs k+1..n produce
/// bitwise-identical weights and stats to an uninterrupted run — through
/// the on-disk store, not just in-memory snapshots.
#[test]
fn checkpoint_roundtrip_through_store_is_bitwise_identical() {
    let ds = toy_dataset(5);
    let mut cfg = dp_cfg();
    cfg.epochs = 6;

    let mut straight = TrainSession::new(&ds, &cfg);
    straight.run_to_completion(&ds);
    let (straight_model, straight_stats) = straight.finish();

    for split in [1usize, 3, 5] {
        let dir = std::env::temp_dir().join(format!("kdsel-ckpt-{split}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SelectorStore::open(&dir).unwrap();

        let mut first = TrainSession::new(&ds, &cfg);
        for _ in 0..split {
            first.run_epoch(&ds);
        }
        first.save_checkpoint(&store, "mid").unwrap();
        drop(first);

        let mut resumed = TrainSession::resume_from(&store, "mid", &ds).unwrap();
        assert_eq!(resumed.epoch(), split, "resume lands at epoch {split}");
        resumed.run_to_completion(&ds);
        let (resumed_model, resumed_stats) = resumed.finish();

        assert_eq!(
            weights_of(&straight_model),
            weights_of(&resumed_model),
            "weights after resume from epoch {split}"
        );
        for (a, b) in straight_model.buffers().iter().zip(resumed_model.buffers()) {
            assert_eq!(*a, b, "buffers after resume from epoch {split}");
        }
        assert_stats_eq(
            &straight_stats,
            &resumed_stats,
            &format!("resume from epoch {split}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Resuming over a *different* dataset — even one with the identical
/// window count and shape — is a hard error (content fingerprint), not a
/// silently corrupted continuation.
#[test]
fn resume_rejects_same_sized_but_different_dataset() {
    let ds = toy_dataset(5);
    let other = toy_dataset(6); // same shape, different content
    assert_eq!(ds.len(), other.len(), "precondition: sizes match");
    let mut cfg = dp_cfg();
    cfg.epochs = 3;
    let mut session = TrainSession::new(&ds, &cfg);
    session.run_epoch(&ds);
    let ckpt = session.checkpoint();

    let err = match TrainSession::resume(&other, &ckpt) {
        Err(e) => e,
        Ok(_) => panic!("resume over a different dataset must fail"),
    };
    assert!(err.contains("fingerprint"), "unexpected error: {err}");
    // The original dataset still resumes fine.
    assert!(TrainSession::resume(&ds, &ckpt).is_ok());
}

/// A checkpoint taken at the final epoch boundary resumes into an
/// already-complete session whose finish() hands back the exact weights.
#[test]
fn checkpoint_of_finished_run_resumes_complete() {
    let ds = toy_dataset(7);
    let mut cfg = dp_cfg();
    cfg.epochs = 2;
    let mut session = TrainSession::new(&ds, &cfg);
    session.run_to_completion(&ds);
    let ckpt = session.checkpoint();
    let (model, _) = session.finish();

    let resumed = TrainSession::resume(&ds, &ckpt).unwrap();
    assert!(resumed.is_complete());
    let (resumed_model, _) = resumed.finish();
    assert_eq!(weights_of(&model), weights_of(&resumed_model));
}

/// Acceptance pin: a live engine serves correctly before and after
/// `deploy()` of a session-trained selector, with concurrent callers in
/// flight across the swap.
#[test]
fn deploy_hot_swaps_session_output_under_concurrent_serving() {
    let ds = toy_dataset(3);
    let window = ds.window_cfg;
    let series: Vec<tsdata::TimeSeries> = (0..6)
        .map(|i| {
            tsdata::TimeSeries::new(
                format!("deploy-{i}"),
                "D",
                (0..160)
                    .map(|t| ((t + 11 * i) as f64 * 0.17).sin() + 0.02 * i as f64)
                    .collect(),
                vec![],
            )
        })
        .collect();

    // v1: an untrained build; v2: the session-trained selector.
    let engine = Arc::new(SelectorEngine::with_window_cache(16));
    engine
        .deploy(
            "live",
            TrainedSelector::build(Architecture::ConvNet, 32, 4, 99),
            window,
        )
        .expect("v1 deploys");
    let before = engine.select_batch("live", &series).expect("v1 serves");

    // References for both versions from independent engines.
    let mut cfg = dp_cfg();
    cfg.epochs = 2;
    let reference_v2 = {
        let (model, _) = train(&ds, &cfg);
        let probe = SelectorEngine::new();
        probe.deploy("live", model, window).unwrap();
        probe.select_batch("live", &series).unwrap()
    };
    let reference_v1 = {
        let probe = SelectorEngine::new();
        probe
            .deploy(
                "live",
                TrainedSelector::build(Architecture::ConvNet, 32, 4, 99),
                window,
            )
            .unwrap();
        probe.select_batch("live", &series).unwrap()
    };
    assert_eq!(before, reference_v1, "pre-deploy serving matches v1");

    let stop = AtomicBool::new(false);
    let v2_observations = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut callers = Vec::new();
        for _ in 0..4 {
            callers.push(scope.spawn(|| {
                let mut observed_v2 = false;
                // Acquire pairs with the Release store below — callers
                // branch on the flag, so it is control flow.
                while !stop.load(Ordering::Acquire) {
                    let got = engine.select_batch("live", &series).expect("registered");
                    if got == reference_v2 {
                        if !observed_v2 {
                            v2_observations.fetch_add(1, Ordering::SeqCst);
                        }
                        observed_v2 = true;
                    } else {
                        assert_eq!(
                            got, reference_v1,
                            "every served batch is exactly v1 or exactly v2"
                        );
                    }
                }
                observed_v2
            }));
        }

        // Train a session while the callers hammer the engine, then deploy
        // its output into the live registry.
        let mut session = TrainSession::new(&ds, &cfg);
        session.run_to_completion(&ds);
        let (model, stats) = session.finish();
        assert_eq!(stats.epoch_loss.len(), cfg.epochs);
        engine.deploy("live", model, window).expect("v2 deploys");

        // Post-deploy serving is exactly v2, while callers may still be
        // finishing v1 batches they resolved before the swap.
        let after = engine.select_batch("live", &series).expect("v2 serves");
        assert_eq!(after, reference_v2, "post-deploy serving matches v2");

        // Wait (bounded) until a concurrent caller's own loop has served
        // the deployed version — on a loaded single-core box the callers
        // may be starved for a while, but the registry already holds v2,
        // so their next completed iteration must observe it.
        // kdlint: allow(wallclock): bounded test poll — fail, not hang.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while v2_observations.load(Ordering::SeqCst) == 0 {
            assert!(
                // kdlint: allow(wallclock): poll deadline check.
                std::time::Instant::now() < deadline,
                "no concurrent caller observed the deployed selector in 30s"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let observations: Vec<bool> = callers.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(
            observations.iter().any(|&v| v),
            "at least one concurrent caller served the deployed selector"
        );
    });
}

/// Session-trained models round-trip through the store and serve from a
/// fresh engine identically (deploy ≡ save → load).
#[test]
fn deploy_equals_save_load_serve() {
    let ds = toy_dataset(9);
    let window = ds.window_cfg;
    let mut cfg = dp_cfg();
    cfg.epochs = 2;
    let (model, _) = train(&ds, &cfg);

    let dir = std::env::temp_dir().join(format!("kdsel-deploy-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SelectorStore::open(&dir).unwrap();
    store.save("kd", &model, "session-trained").unwrap();

    let deployed = SelectorEngine::new();
    deployed.deploy("kd", model, window).unwrap();
    let loaded = SelectorEngine::new();
    loaded.load(&store, "kd", window).unwrap();

    let series: Vec<tsdata::TimeSeries> = (0..4)
        .map(|i| {
            tsdata::TimeSeries::new(
                format!("rt-{i}"),
                "D",
                (0..128)
                    .map(|t| ((t * (i + 2)) as f64 * 0.11).cos())
                    .collect(),
                vec![],
            )
        })
        .collect();
    assert_eq!(
        deployed.select_batch("kd", &series).unwrap(),
        loaded.select_batch("kd", &series).unwrap(),
        "deployed and store-loaded selectors serve bitwise-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
