//! Cross-crate pruning behaviour: InfoBatch vs PA on a real training run,
//! plus property-based invariants of `PruneState::plan_epoch` across epoch
//! sweeps for all three strategies.

mod common;

use kdselector::core::prune::{PruneState, PruningStrategy};
use kdselector::core::train::TrainConfig;
use proptest::prelude::*;

#[test]
fn pa_visits_fewest_samples_and_stays_close_in_accuracy() {
    let pipeline = common::tiny_pipeline("prune");
    let mut base = pipeline.config.train;
    base.epochs = 8;

    let full = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::None,
            ..base
        },
        "full",
    );
    let ib = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::InfoBatch {
                ratio: 0.8,
                anneal: 0.125,
            },
            ..base
        },
        "infobatch",
    );
    let pa = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::Pa {
                ratio: 0.8,
                lsh_bits: 14,
                bins: 8,
                anneal: 0.125,
            },
            ..base
        },
        "pa",
    );

    // Visit counts: full > InfoBatch >= PA.
    let visits = |s: &kdselector::core::TrainStats| s.epoch_examined.iter().sum::<usize>();
    assert!(
        visits(&full.stats) > visits(&ib.stats),
        "InfoBatch must prune"
    );
    assert!(
        visits(&ib.stats) >= visits(&pa.stats),
        "PA prunes at least as much"
    );

    // Accuracy stays in a sane band (synthetic tiny data ⇒ loose tolerance).
    let f = full.report.average_auc_pr();
    let p = pa.report.average_auc_pr();
    assert!(
        (f - p).abs() < 0.25,
        "PA accuracy drifted too far: full={f:.3} pa={p:.3}"
    );
    common::cleanup("prune");
}

#[test]
fn first_and_anneal_epochs_use_full_data() {
    let pipeline = common::tiny_pipeline("anneal");
    let mut cfg = pipeline.config.train;
    cfg.epochs = 8;
    cfg.pruning = PruningStrategy::Pa {
        ratio: 0.8,
        lsh_bits: 12,
        bins: 4,
        anneal: 0.25,
    };
    let outcome = pipeline.train_nn_with(&cfg, "pa");
    let n = outcome.stats.total_windows;
    let examined = &outcome.stats.epoch_examined;
    assert_eq!(examined[0], n, "epoch 0 must be full");
    assert_eq!(
        examined[6], n,
        "anneal tail (25% of 8 = last 2 epochs) must be full"
    );
    assert_eq!(examined[7], n);
    // Some middle epoch must actually prune.
    assert!(examined[1..6].iter().any(|&e| e < n), "{examined:?}");
    common::cleanup("anneal");
}

/// Picks one of the three `PruningStrategy` variants.
fn strategy_of(pick: usize, ratio: f64, anneal: f64) -> PruningStrategy {
    match pick % 3 {
        0 => PruningStrategy::None,
        1 => PruningStrategy::InfoBatch { ratio, anneal },
        _ => PruningStrategy::Pa {
            ratio,
            lsh_bits: 12,
            bins: 4,
            anneal,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `plan_epoch` invariants across a full epoch sweep, every strategy:
    /// aligned index/weight vectors, in-range unique indices, weights from
    /// the {1, 1/(1-r)} two-point set, mandatory full epochs (first epoch,
    /// anneal tail, `None` always), the InfoBatch guarantee that above-mean
    /// and never-visited samples survive unweighted, and an examined
    /// fraction within the strategy's bounds.
    #[test]
    fn plan_epoch_invariants_hold_across_epoch_sweeps(
        n in 16usize..160,
        pick in 0usize..3,
        ratio in 0.1f64..0.9,
        anneal in 0.0f64..0.4,
        epochs in 2usize..10,
        seed in 0u64..500,
    ) {
        let strategy = strategy_of(pick, ratio, anneal);
        // Clustered LSH inputs so PA actually forms multi-member buckets.
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![1.0, 2.0, 3.0, (i / 16) as f64 * 1e-4]
                } else {
                    vec![-(i as f64), 1.0, (i * i) as f64 * 0.1, 5.0]
                }
            })
            .collect();
        let lsh = matches!(strategy, PruningStrategy::Pa { .. }).then_some(&inputs[..]);
        let mut st = PruneState::new(strategy, lsh, n, seed);

        let anneal_start = ((1.0 - anneal) * epochs as f64).ceil() as usize;
        let keep_weight = (1.0 / (1.0 - ratio)) as f32;
        let mut total_examined = 0usize;
        let mut full_epochs = 0usize;

        for epoch in 0..epochs {
            let plan = st.plan_epoch(epoch, epochs);

            // Index/weight alignment, range, uniqueness.
            prop_assert_eq!(plan.indices.len(), plan.weights.len());
            let mut seen = std::collections::BTreeSet::new();
            for &i in &plan.indices {
                prop_assert!(i < n, "index {i} out of range {n}");
                prop_assert!(seen.insert(i), "duplicate index {i}");
            }

            // Weights come from the strategy's two-point set.
            for &w in &plan.weights {
                match strategy {
                    PruningStrategy::None => prop_assert_eq!(w, 1.0),
                    _ => prop_assert!(
                        (w - 1.0).abs() < 1e-6 || (w - keep_weight).abs() < 1e-4,
                        "weight {w} is neither 1 nor {keep_weight}"
                    ),
                }
            }

            // Mandatory full epochs.
            let must_be_full = matches!(strategy, PruningStrategy::None)
                || epoch == 0
                || epoch >= anneal_start;
            if must_be_full {
                prop_assert_eq!(plan.indices.len(), n, "epoch {} must be full", epoch);
                full_epochs += 1;
            }

            // InfoBatch keeps every above-mean (and never-visited) sample
            // with weight 1 — checkable against the public running means.
            if let PruningStrategy::InfoBatch { .. } = strategy {
                if !must_be_full {
                    let visited: Vec<f64> =
                        (0..n).filter_map(|i| st.avg_loss(i)).collect();
                    let mean: f64 =
                        visited.iter().sum::<f64>() / visited.len().max(1) as f64;
                    for i in 0..n {
                        let high = st.avg_loss(i).is_none_or(|l| l >= mean);
                        if high {
                            let pos = plan.indices.iter().position(|&j| j == i);
                            prop_assert!(pos.is_some(), "above-mean sample {i} pruned");
                            prop_assert_eq!(plan.weights[pos.unwrap()], 1.0);
                        }
                    }
                }
            }

            total_examined += plan.indices.len();
            // Record synthetic losses so later epochs have running means:
            // a stable per-sample loss keyed on the index.
            let losses: Vec<f64> = plan
                .indices
                .iter()
                .map(|&i| if i < n / 2 { 0.1 } else { 2.0 + i as f64 * 1e-3 })
                .collect();
            st.record_losses(&plan.indices, &losses);
        }

        // Examined fraction within strategy bounds: `None` examines
        // everything; pruning strategies examine at least the mandatory
        // full epochs and never more than everything.
        let frac = total_examined as f64 / (n * epochs) as f64;
        match strategy {
            PruningStrategy::None => prop_assert!((frac - 1.0).abs() < 1e-12),
            _ => {
                let floor = (full_epochs * n) as f64 / (n * epochs) as f64;
                prop_assert!(frac <= 1.0 + 1e-12, "fraction {frac} above 1");
                prop_assert!(
                    frac >= floor - 1e-12,
                    "fraction {frac} below mandatory-full floor {floor}"
                );
            }
        }
    }

    /// Planning is history-free: the same state produces the same plan for
    /// an epoch no matter which (or how many) other epochs were planned —
    /// the property bitwise checkpoint resume relies on.
    #[test]
    fn plan_epoch_is_history_free(
        n in 16usize..100,
        pick in 1usize..3,
        seed in 0u64..500,
    ) {
        let strategy = strategy_of(pick, 0.6, 0.0);
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 5) as f64, (i / 3) as f64, 1.0])
            .collect();
        let lsh = matches!(strategy, PruningStrategy::Pa { .. }).then_some(&inputs[..]);
        let mut st = PruneState::new(strategy, lsh, n, seed);
        let idx: Vec<usize> = (0..n).collect();
        let losses: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        st.record_losses(&idx, &losses);

        let direct = st.plan_epoch(3, 10);
        // Plan a detour of other epochs, then the same epoch again.
        let _ = st.plan_epoch(1, 10);
        let _ = st.plan_epoch(2, 10);
        let again = st.plan_epoch(3, 10);
        prop_assert_eq!(direct.indices, again.indices);
        prop_assert_eq!(direct.weights, again.weights);
    }
}
