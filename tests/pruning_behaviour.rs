//! Cross-crate pruning behaviour: InfoBatch vs PA on a real training run.

mod common;

use kdselector::core::prune::PruningStrategy;
use kdselector::core::train::TrainConfig;

#[test]
fn pa_visits_fewest_samples_and_stays_close_in_accuracy() {
    let pipeline = common::tiny_pipeline("prune");
    let mut base = pipeline.config.train;
    base.epochs = 8;

    let full = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::None,
            ..base
        },
        "full",
    );
    let ib = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::InfoBatch {
                ratio: 0.8,
                anneal: 0.125,
            },
            ..base
        },
        "infobatch",
    );
    let pa = pipeline.train_nn_with(
        &TrainConfig {
            pruning: PruningStrategy::Pa {
                ratio: 0.8,
                lsh_bits: 14,
                bins: 8,
                anneal: 0.125,
            },
            ..base
        },
        "pa",
    );

    // Visit counts: full > InfoBatch >= PA.
    let visits = |s: &kdselector::core::TrainStats| s.epoch_examined.iter().sum::<usize>();
    assert!(
        visits(&full.stats) > visits(&ib.stats),
        "InfoBatch must prune"
    );
    assert!(
        visits(&ib.stats) >= visits(&pa.stats),
        "PA prunes at least as much"
    );

    // Accuracy stays in a sane band (synthetic tiny data ⇒ loose tolerance).
    let f = full.report.average_auc_pr();
    let p = pa.report.average_auc_pr();
    assert!(
        (f - p).abs() < 0.25,
        "PA accuracy drifted too far: full={f:.3} pa={p:.3}"
    );
    common::cleanup("prune");
}

#[test]
fn first_and_anneal_epochs_use_full_data() {
    let pipeline = common::tiny_pipeline("anneal");
    let mut cfg = pipeline.config.train;
    cfg.epochs = 8;
    cfg.pruning = PruningStrategy::Pa {
        ratio: 0.8,
        lsh_bits: 12,
        bins: 4,
        anneal: 0.25,
    };
    let outcome = pipeline.train_nn_with(&cfg, "pa");
    let n = outcome.stats.total_windows;
    let examined = &outcome.stats.epoch_examined;
    assert_eq!(examined[0], n, "epoch 0 must be full");
    assert_eq!(
        examined[6], n,
        "anneal tail (25% of 8 = last 2 epochs) must be full"
    );
    assert_eq!(examined[7], n);
    // Some middle epoch must actually prune.
    assert!(examined[1..6].iter().any(|&e| e < n), "{examined:?}");
    common::cleanup("anneal");
}
