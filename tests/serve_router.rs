//! The supervised sharded tier's contract, enforced end to end:
//!
//! 1. **Sharded ≡ direct, bitwise.** Requests routed through the 4-shard
//!    tier under concurrent producers return `Selection`s bit-identical to
//!    the direct engine, across `KD_THREADS ∈ {1, 4}`.
//! 2. **Failure policy, deterministically.** With a scripted fault plan
//!    (count-based, so schedules replay exactly): injected rejects are
//!    retried to success; score panics trip the per-(shard, selector)
//!    breaker, shed to the degraded fallback, half-open on the probe
//!    schedule, and close on success; a worker-killing panic is respawned
//!    by the supervisor with the re-registered selector serving the same
//!    bits; a stalled worker blows the request's deadline into a degraded
//!    reply, is declared wedged, and is respawned.
//! 3. **Replay ≡ live.** The whole scripted failure sequence, run twice
//!    with fresh routers and fresh fault plans at `KD_THREADS ∈ {1, 4}`,
//!    produces byte-identical transcripts.
//! 4. **Totality.** Under a concurrent fault storm (rejects + worker
//!    deaths + score panics + stalls), every `route` call returns exactly
//!    once — a result, a degraded result, or a typed error; never a hang.
//! 5. **Migration.** A selector migrates between shards under live
//!    traffic with every reply bit-identical to direct serving.
//!
//! Lives in its own integration binary because it mutates the
//! process-global `tspar` thread policy (one test fn so mutations never
//! interleave). CI additionally runs the whole binary at `KD_THREADS=1`
//! and `KD_THREADS=4`, in release mode, via the matrix legs.

use kdselector::core::manage::SelectorStore;
use kdselector::core::selector::Selector;
use kdselector::core::serve::{
    BreakerConfig, FaultAction, FaultPlan, FaultPoint, FaultRule, QueueConfig, RetryPolicy,
    RouteError, RouteOptions, RouterConfig, SelectRequest, Selection, SelectorEngine,
    ShardedRouter,
};
use kdselector::core::train::TrainedSelector;
use kdselector::core::Architecture;
use std::sync::Arc;
// kdlint: allow(wallclock): test poll-deadline helper only.
use std::time::{Duration, Instant};
use tsdata::{TimeSeries, WindowConfig};
use tspar::Parallelism;

const KD_SWEEP: [usize; 2] = [1, 4];
const PRODUCERS: usize = 4;

fn window_cfg() -> WindowConfig {
    WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    }
}

fn series_pool(n: usize, len: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|i| {
            TimeSeries::new(
                format!("route-{i}"),
                format!("D{}", i % 3),
                (0..len)
                    .map(|t| {
                        let x = t as f64 * 0.11 + i as f64 * 0.6;
                        x.sin() + 0.4 * (x * 3.1).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect()
}

/// `(name, seed)` for every store-backed selector the suite registers.
/// The dedicated failure-phase selectors get their own names so breaker
/// state never leaks between phases.
const SELECTORS: [(&str, u64); 10] = [
    ("sel-0", 31),
    ("sel-1", 32),
    ("sel-2", 33),
    ("sel-3", 34),
    ("sel-4", 35),
    ("sel-5", 36),
    ("rej", 41),
    ("brk", 43),
    ("die", 47),
    ("stall", 53),
];

/// The degraded-mode fallback: cheap, deterministic, obviously not an NN
/// (votes by series length), so fallback replies are distinguishable from
/// any primary's.
struct LenFallback;

impl Selector for LenFallback {
    fn name(&self) -> &str {
        "len-fallback"
    }
    fn series_scores(&self, ts: &TimeSeries) -> Vec<Vec<f32>> {
        let mut row = vec![0.0f32; 12];
        row[ts.len() % 12] = 1.0;
        vec![row]
    }
}

/// Registers every suite selector on `router` from the store.
fn register_all(router: &ShardedRouter, store: &SelectorStore) {
    for (name, _) in SELECTORS {
        router
            .register_from_store(store, name, window_cfg())
            .expect("register from store");
    }
    router.set_fallback(Arc::new(LenFallback));
}

fn scripted_config() -> RouterConfig {
    RouterConfig {
        shards: 4,
        vnodes: 64,
        queue: QueueConfig::default(),
        cache_capacity: 64,
        retry: RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
        },
        breaker: BreakerConfig {
            trip_after: 3,
            probe_every: 2,
        },
        deadline: Duration::from_secs(2),
        supervise_every: Duration::from_millis(2),
        wedge_checks: 3,
        seed: 42,
    }
}

/// The scripted fault schedule: count-based rules, so it replays exactly.
fn scripted_plan() -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new()
            // C: two rejects at admission, then clean.
            .with(
                FaultRule::at(FaultPoint::Submit, FaultAction::Reject)
                    .on_selector("rej")
                    .times(2),
            )
            // D: exactly max_attempts score panics — route #1 burns all six
            // attempts and trips the breaker; the half-open probe then
            // finds the budget spent and succeeds.
            .with(
                FaultRule::at(FaultPoint::Score, FaultAction::Panic("score-bomb".into()))
                    .on_selector("brk")
                    .times(6),
            )
            // E: one worker-killing panic.
            .with(
                FaultRule::at(FaultPoint::Group, FaultAction::Panic("shard-death".into()))
                    .on_selector("die")
                    .times(1),
            )
            // F: one stall far past the request deadline.
            .with(
                FaultRule::at(
                    FaultPoint::Group,
                    FaultAction::Stall(Duration::from_millis(400)),
                )
                .on_selector("stall")
                .times(1),
            ),
    )
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    // kdlint: allow(wallclock): poll deadline so a bug fails, not hangs.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        // kdlint: allow(wallclock): poll deadline check.
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One transcript line per routed request: phase tag, degraded flag, and
/// the full Debug of the selections (which includes every vote count and
/// the margin bits). Deliberately excludes attempt counts and shard
/// respawn timing — those depend on scheduler interleaving; the
/// determinism contract is about *what was answered*, bit for bit.
fn record(transcript: &mut Vec<String>, tag: &str, degraded: bool, selections: &[Selection]) {
    transcript.push(format!("{tag}: deg={degraded} {selections:?}"));
}

/// Runs the scripted failure sequence (phases C–F) against a fresh router
/// with a fresh fault plan and returns the transcript. Called repeatedly,
/// at different `KD_THREADS`, to prove replay ≡ live.
fn run_scripted(store: &SelectorStore, pool: &[TimeSeries]) -> String {
    let router = ShardedRouter::with_fault_injection(scripted_config(), scripted_plan());
    register_all(&router, store);
    let mut transcript = Vec::new();
    let one = |name: &str, i: usize| SelectRequest::new(name, vec![pool[i % pool.len()].clone()]);

    // ---- C: injected rejects are retried to success. --------------------
    let reply = router.route(&one("rej", 0)).expect("retries cover rejects");
    assert_eq!(reply.attempts, 3, "2 rejects + 1 success");
    assert!(!reply.degraded);
    record(
        &mut transcript,
        "reject-retry",
        reply.degraded,
        &reply.selections,
    );

    // ---- D: score panics trip the breaker; probe schedule closes it. ----
    let brk_shard = router.shard_of("brk");
    // Route #1: every attempt panics → degraded fallback, breaker trips.
    let reply = router.route(&one("brk", 1)).expect("fallback serves");
    assert!(reply.degraded, "exhausted retries must degrade");
    assert_eq!(reply.shard, None, "fallback serves inline, not on a shard");
    record(
        &mut transcript,
        "breaker-trip",
        reply.degraded,
        &reply.selections,
    );
    assert!(
        router.stats().shards[brk_shard].breakers_open >= 1,
        "breaker must be open after consecutive failures"
    );
    // Route #2: first open arrival is shed → degraded without an attempt.
    let reply = router.route(&one("brk", 1)).expect("shed degrades");
    assert!(reply.degraded);
    assert_eq!(reply.attempts, 0, "shed requests never reach a shard");
    record(
        &mut transcript,
        "breaker-shed",
        reply.degraded,
        &reply.selections,
    );
    // Route #3: second open arrival is the half-open probe; the fault
    // budget is spent, so it succeeds and closes the breaker.
    let reply = router.route(&one("brk", 1)).expect("probe succeeds");
    assert!(!reply.degraded, "successful probe serves the primary");
    record(
        &mut transcript,
        "breaker-probe",
        reply.degraded,
        &reply.selections,
    );
    assert_eq!(
        router.stats().shards[brk_shard].breakers_open,
        0,
        "success must close the breaker"
    );
    // Route #4: plain service, breaker closed.
    let reply = router.route(&one("brk", 1)).expect("closed breaker serves");
    assert!(!reply.degraded);
    assert_eq!(reply.attempts, 1);
    record(
        &mut transcript,
        "breaker-closed",
        reply.degraded,
        &reply.selections,
    );

    // ---- E: worker death → supervisor respawn → same bits. --------------
    let die_shard = router.shard_of("die");
    let gen_before = router.stats().shards[die_shard].generation;
    let reply = router
        .route(&one("die", 2))
        .expect("retries cover the respawn window");
    assert!(!reply.degraded, "respawned shard serves the primary");
    record(
        &mut transcript,
        "worker-death",
        reply.degraded,
        &reply.selections,
    );
    wait_for("supervisor respawn after worker death", || {
        router.stats().shards[die_shard].generation > gen_before
    });

    // ---- F: stall past the deadline → degraded now, respawned shortly. --
    let stall_shard = router.shard_of("stall");
    let gen_before = router.stats().shards[stall_shard].generation;
    let reply = router
        .route_with(
            &one("stall", 3),
            RouteOptions {
                deadline: Some(Duration::from_millis(60)),
            },
        )
        .expect("deadline degrades instead of hanging");
    assert!(reply.degraded, "stalled shard must degrade to the fallback");
    record(
        &mut transcript,
        "stall-degrade",
        reply.degraded,
        &reply.selections,
    );
    // The supervisor declares the worker wedged (stagnant heartbeat with
    // work in flight) and respawns it...
    wait_for("wedge detection and respawn", || {
        router.stats().shards[stall_shard].generation > gen_before
    });
    // ...after which the re-registered selector serves normally.
    let reply = router
        .route(&one("stall", 3))
        .expect("respawned shard serves");
    assert!(!reply.degraded);
    record(
        &mut transcript,
        "stall-recovered",
        reply.degraded,
        &reply.selections,
    );

    // Cross-shard health reflects the scripted history.
    let stats = router.stats();
    assert!(stats.routed >= 8, "every scripted route was counted");
    assert!(stats.degraded >= 3, "three degraded replies were served");
    assert_eq!(stats.failed, 0, "no scripted request failed terminally");
    let rejected: u64 = stats.shards.iter().map(|s| s.queue.rejected).sum();
    assert!(rejected >= 2, "the two injected rejects were counted");
    router.shutdown();
    transcript.join("\n")
}

#[test]
fn sharded_routing_is_deterministic_supervised_and_total() {
    // ---- Shared fixtures: a store of saved selectors + a series pool. ---
    tspar::set_parallelism(Parallelism::Fixed(1));
    let store_dir = std::env::temp_dir().join(format!("kdsel-router-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SelectorStore::open(&store_dir).expect("store");
    for (name, seed) in SELECTORS {
        let model = TrainedSelector::build(Architecture::ConvNet, 64, 8, seed);
        store.save(name, &model, "router suite").expect("save");
    }
    let pool = series_pool(12, 380);

    // References: the direct engine, loaded from the same store.
    let direct = SelectorEngine::new();
    for (name, _) in SELECTORS {
        direct.load(&store, name, window_cfg()).expect("load");
    }
    let requests: Vec<SelectRequest> = (0..PRODUCERS * 10)
        .map(|i| {
            let (name, _) = SELECTORS[i % 6]; // the sel-* group
            let size = 1 + i % 3;
            let batch: Vec<TimeSeries> = (0..size)
                .map(|j| pool[(i * 5 + j * 7) % pool.len()].clone())
                .collect();
            SelectRequest::new(name, batch)
        })
        .collect();
    let expected: Vec<Vec<Selection>> = requests
        .iter()
        .map(|r| direct.handle(r).expect("direct serve"))
        .collect();

    // ---- 1. Sharded ≡ direct under concurrent producers, KD sweep. ------
    for &threads in &KD_SWEEP {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        let router = ShardedRouter::new(RouterConfig::default());
        register_all(&router, &store);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let router = &router;
                    let requests = &requests;
                    s.spawn(move || {
                        (0..requests.len())
                            .filter(|i| i % PRODUCERS == p)
                            .map(|i| (i, router.route(&requests[i]).expect("routed")))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, reply) in handle.join().expect("producer thread") {
                    assert_eq!(
                        reply.selections, expected[i],
                        "request {i} diverged from direct serving at KD_THREADS={threads}"
                    );
                    assert!(!reply.degraded, "no faults: nothing may degrade");
                    assert_eq!(
                        reply.shard,
                        Some(router.shard_of(&requests[i].selector)),
                        "request {i} must be served by its placed shard"
                    );
                }
            }
        });

        // Placement and health sanity on the live tier.
        let stats = router.stats();
        assert_eq!(stats.routed, requests.len() as u64);
        assert_eq!(stats.degraded, 0);
        assert_eq!(stats.failed, 0);
        let placed: usize = stats.shards.iter().map(|s| s.selectors.len()).sum();
        assert_eq!(
            placed,
            SELECTORS.len(),
            "every selector lives on exactly one shard"
        );
        for health in &stats.shards {
            assert!(health.alive, "no faults: every worker stays alive");
            assert_eq!(health.generation, 0, "no faults: no respawns");
            for name in &health.selectors {
                assert_eq!(router.shard_of(name), health.shard);
            }
        }
        let admitted: u64 = stats.shards.iter().map(|s| s.queue.admitted).sum();
        assert_eq!(admitted, requests.len() as u64);

        // Unknown selectors fail fast and typed.
        let err = router
            .route(&SelectRequest::new("ghost", vec![pool[0].clone()]))
            .unwrap_err();
        assert_eq!(err, RouteError::UnknownSelector("ghost".into()));
        router.shutdown();
    }

    // ---- 2+3. Scripted failure sequence; replay ≡ live, KD sweep. -------
    let mut transcripts = Vec::new();
    for &threads in &KD_SWEEP {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        std::panic::set_hook(Box::new(|_| {})); // deliberate injected panics
        let live = run_scripted(&store, &pool);
        let replay = run_scripted(&store, &pool);
        let _ = std::panic::take_hook();
        assert_eq!(
            live, replay,
            "replay must be byte-identical to live at KD_THREADS={threads}"
        );
        transcripts.push(live);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "the scripted transcript must be KD_THREADS-invariant"
    );
    // The scripted primaries answered with the direct engine's bits: the
    // recovered phases' selections appear verbatim in the transcript.
    for (name, idx) in [("rej", 0usize), ("brk", 1), ("die", 2), ("stall", 3)] {
        let sels = direct
            .select_batch(name, &pool[idx..=idx])
            .expect("direct reference");
        assert!(
            transcripts[0].contains(&format!("{sels:?}")),
            "{name}: the transcript must contain the direct engine's bits"
        );
    }

    // ---- 4. Totality under a concurrent fault storm. --------------------
    tspar::set_parallelism(Parallelism::Fixed(4));
    {
        let plan = Arc::new(
            FaultPlan::new()
                .with(FaultRule::at(FaultPoint::Submit, FaultAction::Reject).times(6))
                .with(
                    FaultRule::at(FaultPoint::Group, FaultAction::Panic("storm-death".into()))
                        .times(2),
                )
                .with(
                    FaultRule::at(FaultPoint::Score, FaultAction::Panic("storm-score".into()))
                        .times(4),
                )
                .with(
                    FaultRule::at(
                        FaultPoint::Group,
                        FaultAction::Stall(Duration::from_millis(30)),
                    )
                    .times(3),
                ),
        );
        let router = ShardedRouter::with_fault_injection(scripted_config(), plan);
        register_all(&router, &store);
        std::panic::set_hook(Box::new(|_| {}));
        let outcomes: Vec<(usize, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let router = &router;
                    let requests = &requests;
                    let expected = &expected;
                    s.spawn(move || {
                        (0..requests.len())
                            .filter(|i| i % PRODUCERS == p)
                            .map(|i| {
                                // Totality: every call must RETURN — a
                                // result, a degraded result, or a typed
                                // error. The scope join below would hang
                                // (and wait_for-style CI timeouts fail)
                                // if any call did not.
                                match router.route(&requests[i]) {
                                    Ok(reply) => {
                                        if !reply.degraded {
                                            assert_eq!(
                                                reply.selections, expected[i],
                                                "storm request {i}: primary replies stay bitwise"
                                            );
                                        }
                                        (i, reply.degraded)
                                    }
                                    Err(
                                        RouteError::DeadlineExceeded { .. }
                                        | RouteError::Exhausted { .. }
                                        | RouteError::BreakerOpen,
                                    ) => (i, true),
                                    Err(other) => panic!("storm request {i}: {other}"),
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("storm producer"))
                .collect()
        });
        let _ = std::panic::take_hook();
        assert_eq!(outcomes.len(), requests.len(), "every request completed");
        assert_eq!(router.stats().routed, requests.len() as u64);
        router.shutdown();
    }

    // ---- 5. Migration under live traffic stays bitwise. -----------------
    tspar::set_parallelism(Parallelism::Fixed(4));
    {
        let router = ShardedRouter::new(RouterConfig::default());
        register_all(&router, &store);
        let source = router.shard_of("sel-0");
        let target = (source + 1) % 4;
        let mig_request = SelectRequest::new("sel-0", vec![pool[4].clone()]);
        let mig_expected = direct.select_batch("sel-0", &pool[4..=4]).expect("direct");
        std::thread::scope(|s| {
            let producers: Vec<_> = (0..2)
                .map(|_| {
                    let router = &router;
                    let mig_request = &mig_request;
                    s.spawn(move || {
                        (0..60)
                            .map(|_| router.route(mig_request).expect("routed during migration"))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Migrate mid-traffic.
            std::thread::sleep(Duration::from_millis(5));
            router.migrate("sel-0", target).expect("migration");
            for handle in producers {
                for reply in handle.join().expect("migration producer") {
                    assert_eq!(
                        reply.selections, mig_expected,
                        "every reply across the migration is bitwise identical"
                    );
                    assert!(!reply.degraded);
                }
            }
        });
        assert_eq!(router.shard_of("sel-0"), target, "placement flipped");
        assert!(router.shard_serves(target, "sel-0"), "target serves it");
        assert!(!router.shard_serves(source, "sel-0"), "source retired it");
        // Post-migration service is still bitwise.
        let reply = router.route(&mig_request).expect("served after migration");
        assert_eq!(reply.selections, mig_expected);
        assert_eq!(reply.shard, Some(target));
        // Migrating to the current home is a no-op.
        router
            .migrate("sel-0", target)
            .expect("idempotent migration");
        router.shutdown();
    }

    let _ = std::fs::remove_dir_all(&store_dir);
    tspar::set_parallelism(Parallelism::Auto);
}
