//! The streaming-loop replay contract, end to end:
//!
//! 1. A full ingest → drift → retrain → deploy → serve loop driven from a
//!    fixed append log is **bitwise-identical across `KD_THREADS`**: same
//!    daemon events (drift signals, retrain triggers, per-epoch losses),
//!    same persisted per-version weights, same served selections at
//!    1 and 4 threads.
//! 2. **Checkpoint-interrupt-resume:** killing the daemon mid-training and
//!    replaying the same append log with a *fresh* daemon against the same
//!    store resumes the interrupted session from its epoch checkpoint and
//!    converges to the same weights, selections, and decision trace as a
//!    never-interrupted run — even when the replay uses a different
//!    `KD_THREADS` than the interrupted live run.
//!
//! Lives in its own binary because the sweep mutates the process-global
//! `tspar` thread policy. CI additionally runs this binary in release mode
//! at `KD_THREADS=1` and `KD_THREADS=4` via the matrix legs.

use kdselector::core::manage::SelectorStore;
use kdselector::core::prune::PruningStrategy;
use kdselector::core::serve::{SelectRequest, SelectorEngine, WindowCache};
use kdselector::core::stream::{
    DaemonConfig, DaemonEvent, DriftConfig, LabelOracle, RetrainDaemon, RetrainReason,
};
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use kdselector::nn::serialize::{save_params, StateDict};
use std::path::PathBuf;
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};
use tspar::Parallelism;

const SELECTOR: &str = "stream-sel";
const EPOCHS: usize = 2;

/// Deterministic content-keyed oracle (no detector runs): the best model
/// follows the series mean, so the post-shift corpus relabels.
struct MeanOracle;
impl LabelOracle for MeanOracle {
    fn perf_row(&self, ts: &TimeSeries) -> Vec<f64> {
        let mean = ts.values.iter().sum::<f64>() / ts.len().max(1) as f64;
        let best = if mean >= 1.0 {
            2
        } else {
            usize::from(mean < 0.0)
        };
        (0..12).map(|m| if m == best { 0.9 } else { 0.1 }).collect()
    }
}

fn wave(n: usize, phase: f64, offset: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.17 + phase).sin() + offset)
        .collect()
}

/// The fixed append log every leg replays. Designed to cross the sample
/// quota twice (versions 1 and 2) and then level-shift stream `a` after a
/// re-anchoring chunk, raising an input-drift retrain (version 3).
fn append_log() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        // Phase 1 — both streams fill to the quota: v1 (Quota).
        ("a", wave(160, 0.0, 0.0)),
        ("b", wave(160, 1.3, 0.0)),
        // Phase 2 — steady arrivals cross the quota again: v2 (Quota).
        ("a", wave(96, 2.1, 0.0)),
        ("b", wave(96, 0.7, 0.0)),
        ("a", wave(96, 4.0, 0.0)),
        // Phase 3 — anchor the post-deploy drift reference, then shift.
        ("a", wave(96, 5.0, 0.0)),
        ("a", wave(96, 5.5, 35.0)), // level shift: drift → v3.
        ("b", wave(32, 2.2, 0.0)),
    ]
}

fn daemon_cfg() -> DaemonConfig {
    DaemonConfig {
        selector: SELECTOR.to_string(),
        window: WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        },
        train: TrainConfig {
            arch: Architecture::ConvNet,
            width: 4,
            epochs: EPOCHS,
            batch_size: 16,
            lr: 5e-3,
            pruning: PruningStrategy::None,
            ..TrainConfig::default()
        },
        drift: DriftConfig {
            window: 64,
            threshold: 6.0,
        },
        quota: 256,
        min_samples: 256,
        text_dim: 16,
    }
}

/// Everything a run produces that the contract pins.
struct Outcome {
    events: Vec<DaemonEvent>,
    version: u32,
    /// Per-version persisted weights, `(name, state)` in version order.
    weights: Vec<(String, StateDict)>,
    /// Served selections over the final snapshots, one per stream:
    /// `(stream, model index, votes, windows, margin bits)`.
    selections: Vec<(String, usize, Vec<usize>, usize, u64)>,
    /// Whether the run was abandoned mid-training (interrupt leg).
    interrupted: bool,
}

fn store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kdsel-stream-loop-{tag}-{}", std::process::id()))
}

/// Drives the full loop over [`append_log`] at `threads`. With
/// `interrupt_after_steps = Some(n)`, the daemon is dropped right after
/// its `n`-th training step — mid-session — and the partial outcome is
/// returned with `interrupted = true`.
fn run(threads: usize, dir: &PathBuf, interrupt_after_steps: Option<usize>) -> Outcome {
    tspar::set_parallelism(Parallelism::Fixed(threads));
    let store = SelectorStore::open(dir).expect("store");
    let cache = Arc::new(WindowCache::with_byte_budget(64, 1 << 20));
    let engine = Arc::new(SelectorEngine::with_shared_cache(Arc::clone(&cache)));
    let mut daemon = RetrainDaemon::new(
        Arc::clone(&engine),
        store.clone(),
        Box::new(MeanOracle),
        daemon_cfg(),
    );

    let mut events = Vec::new();
    let mut steps = 0usize;
    for (stream, samples) in append_log() {
        events.extend(daemon.ingest(stream, &samples).expect("ingest"));
        while daemon.is_training() {
            events.extend(daemon.step().expect("step"));
            steps += 1;
            if interrupt_after_steps == Some(steps) {
                assert!(
                    daemon.is_training(),
                    "interrupt landed between sessions, not mid-training — \
                     pick a different step index"
                );
                return Outcome {
                    events,
                    version: daemon.version(),
                    weights: Vec::new(),
                    selections: Vec::new(),
                    interrupted: true,
                };
            }
        }
    }

    let version = daemon.version();
    let weights = (1..=version)
        .map(|v| {
            let name = format!("{SELECTOR}-v{v}");
            let model = store.load(&name).expect("versioned selector");
            (name, save_params(&model.params()))
        })
        .collect();
    let selections = daemon
        .ingestor()
        .names()
        .into_iter()
        .map(|stream| {
            let ts = daemon.ingestor().snapshot(&stream).expect("snapshot");
            let sel = engine
                .handle(&SelectRequest::new(SELECTOR, vec![ts]))
                .expect("serve")
                .remove(0);
            (
                stream,
                sel.model.index(),
                sel.votes,
                sel.windows,
                sel.margin.to_bits(),
            )
        })
        .collect();
    Outcome {
        events,
        version,
        weights,
        selections,
        interrupted: false,
    }
}

/// The decision trace: every event except the per-epoch ones, with
/// `resumed_epochs` zeroed — the part of the event stream that must be
/// identical even across an interrupt/resume (a resumed run legitimately
/// reports non-zero `resumed_epochs` and fewer `EpochCompleted`s).
fn decision_trace(events: &[DaemonEvent]) -> Vec<DaemonEvent> {
    events
        .iter()
        .filter(|e| !matches!(e, DaemonEvent::EpochCompleted { .. }))
        .cloned()
        .map(|e| match e {
            DaemonEvent::RetrainStarted {
                version,
                reason,
                windows,
                ..
            } => DaemonEvent::RetrainStarted {
                version,
                reason,
                windows,
                resumed_epochs: 0,
            },
            other => other,
        })
        .collect()
}

/// Per-version `(epoch, loss bits)` sequences, for the suffix pin.
fn epoch_trace(events: &[DaemonEvent]) -> Vec<Vec<(usize, u64)>> {
    let mut per_version: Vec<Vec<(usize, u64)>> = Vec::new();
    for e in events {
        if let DaemonEvent::EpochCompleted {
            version,
            epoch,
            loss,
        } = e
        {
            let v = *version as usize;
            while per_version.len() < v {
                per_version.push(Vec::new());
            }
            per_version[v - 1].push((*epoch, loss.to_bits()));
        }
    }
    per_version
}

/// One test fn: the `tspar` policy sweep is process-global and must never
/// interleave with itself.
#[test]
fn streaming_loop_replays_bitwise_and_survives_interrupts() {
    // ---- Leg 1: plain runs at KD_THREADS ∈ {1, 4} are fully identical.
    let (d1, d4) = (store_dir("t1"), store_dir("t4"));
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
    let base = run(1, &d1, None);
    let threaded = run(4, &d4, None);

    assert_eq!(base.version, 3, "quota ×2 + drift must open three retrains");
    let reasons: Vec<RetrainReason> = base
        .events
        .iter()
        .filter_map(|e| match e {
            DaemonEvent::RetrainStarted { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect();
    assert_eq!(
        reasons,
        vec![
            RetrainReason::Quota,
            RetrainReason::Quota,
            RetrainReason::Drift
        ]
    );
    assert!(
        base.events
            .iter()
            .any(|e| matches!(e, DaemonEvent::Drift(_))),
        "the level shift must raise a drift signal"
    );

    assert_eq!(base.events, threaded.events, "events at 1 vs 4 threads");
    assert_eq!(base.weights, threaded.weights, "weights at 1 vs 4 threads");
    assert_eq!(
        base.selections, threaded.selections,
        "served selections at 1 vs 4 threads"
    );

    // ---- Leg 2: interrupt mid-v2-training at 1 thread, then replay the
    // full log with a fresh daemon on the SAME store at 4 threads.
    let di = store_dir("interrupt");
    let _ = std::fs::remove_dir_all(&di);
    let partial = run(1, &di, Some(EPOCHS + 1)); // v1 done, v2 one epoch in
    assert!(partial.interrupted);
    assert_eq!(partial.version, 2, "the cut must land inside v2's session");

    let resumed = run(4, &di, None);
    assert!(
        resumed.events.iter().any(|e| matches!(
            e,
            DaemonEvent::RetrainStarted {
                version: 2,
                resumed_epochs: 1,
                ..
            }
        )),
        "v2 must resume from its epoch-1 checkpoint, got {:?}",
        decision_trace(&resumed.events)
    );
    assert_eq!(
        decision_trace(&resumed.events),
        decision_trace(&base.events),
        "interrupt + replay must reproduce the decision trace"
    );
    // Replayed epochs are a per-version suffix of the uninterrupted run's,
    // bitwise (resumed sessions re-run only the missing epochs).
    let (full, replayed) = (epoch_trace(&base.events), epoch_trace(&resumed.events));
    assert_eq!(full.len(), replayed.len());
    for (v, (f, r)) in full.iter().zip(&replayed).enumerate() {
        assert!(
            r.len() <= f.len() && &f[f.len() - r.len()..] == r.as_slice(),
            "v{}: replayed epochs {:?} must suffix the full run's {:?}",
            v + 1,
            r,
            f
        );
    }
    assert_eq!(
        resumed.weights, base.weights,
        "interrupt + replay must converge to identical per-version weights"
    );
    assert_eq!(
        resumed.selections, base.selections,
        "interrupt + replay must serve identical selections"
    );

    tspar::set_parallelism(Parallelism::Auto);
    for d in [d1, d4, di] {
        let _ = std::fs::remove_dir_all(d);
    }
}
