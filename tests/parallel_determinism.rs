//! The compute backend must be scheduling-independent: a fixed-seed run
//! produces bit-identical kernels, labels, and end-to-end model selections
//! at 1 worker thread and at N worker threads.
//!
//! This lives in its own integration binary because it mutates the
//! process-global `tspar` thread policy.

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdata::{BenchmarkConfig, WindowConfig};
use tspar::Parallelism;

mod common;
use common::random_tensor;

/// One test fn (not several) so the global thread-policy mutations never
/// interleave.
#[test]
fn results_are_identical_across_thread_counts() {
    // --- Kernel level: exact equality, not tolerance. -------------------
    let mut rng = StdRng::seed_from_u64(40);
    let a = random_tensor(&mut rng, &[96, 120]);
    let b = random_tensor(&mut rng, &[120, 88]);
    let c = random_tensor(&mut rng, &[96, 88]);

    tspar::set_parallelism(Parallelism::Fixed(1));
    let serial = (a.matmul(&b), a.t_matmul(&c), b.matmul_t(&b));
    tspar::set_parallelism(Parallelism::Fixed(6));
    let parallel = (a.matmul(&b), a.t_matmul(&c), b.matmul_t(&b));
    assert_eq!(
        serial.0, parallel.0,
        "matmul must not depend on thread count"
    );
    assert_eq!(
        serial.1, parallel.1,
        "t_matmul must not depend on thread count"
    );
    assert_eq!(
        serial.2, parallel.2,
        "matmul_t must not depend on thread count"
    );

    // --- End to end: labels → training → per-dataset selections. -------
    let run = |threads: usize, tag: &str| {
        tspar::set_parallelism(Parallelism::Fixed(threads));
        let mut cfg = PipelineConfig::quick();
        cfg.benchmark = BenchmarkConfig {
            train_series_per_family: 1,
            test_series_per_family: 1,
            series_length: 360,
            seed: 5,
        };
        cfg.window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        cfg.train.epochs = 3;
        cfg.train.width = 4;
        // Separate cache dirs so the second run actually recomputes its
        // labels on the other thread count instead of reading the first
        // run's cache.
        cfg.cache_dir =
            std::env::temp_dir().join(format!("kdsel-det-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);
        let pipeline = Pipeline::prepare(cfg).expect("pipeline");
        let outcome = pipeline.train_nn_selector();
        let selector = outcome.selector;
        let preds = selector.model.predict_windows(&pipeline.dataset.windows);
        // Serve the test split through the engine's batched path as well:
        // the structured Selections must be scheduling-independent too.
        let engine = kdselector::core::serve::SelectorEngine::new();
        engine.register("nn", std::sync::Arc::new(selector));
        let served = engine
            .select_batch("nn", &pipeline.benchmark.test)
            .expect("registered");
        let _ = std::fs::remove_dir_all(&pipeline.config.cache_dir);
        (
            pipeline.train_perf,
            outcome.report.per_dataset,
            preds,
            served,
        )
    };

    let (perf_1, selections_1, preds_1, served_1) = run(1, "serial");
    let (perf_n, selections_n, preds_n, served_n) = run(4, "parallel");
    tspar::set_parallelism(Parallelism::Auto);

    assert_eq!(
        perf_1, perf_n,
        "label matrices must match across thread counts"
    );
    assert_eq!(
        preds_1, preds_n,
        "window predictions must match across thread counts"
    );
    assert_eq!(
        selections_1, selections_n,
        "per-dataset selection outcomes must match across thread counts"
    );
    assert_eq!(
        served_1, served_n,
        "engine Selections must match across thread counts"
    );
}
