//! Cross-crate metric consistency: the AUC-PR that evaluation reports must
//! equal what the metrics crate computes on the detector's raw scores.

use kdselector::detectors::{default_model_set, ModelId};
use kdselector::metrics::{auc_pr, auc_roc, best_f1, Counts};
use tsdata::benchmark::generate_series;
use tsdata::families::family_by_name;

#[test]
fn label_generation_matches_direct_metric_computation() {
    let family = family_by_name("YAHOO").expect("family exists");
    let ts = generate_series(&family, 500, 77, "metrics-it");
    let labels = ts.point_labels();
    let row = kdselector::core::labels::score_series(&ts, 11);
    assert_eq!(row.len(), 12);
    for (detector, &recorded) in default_model_set(11).iter().zip(&row) {
        let direct = auc_pr(&detector.score(&ts.values), &labels);
        assert!(
            (recorded - direct).abs() < 1e-12,
            "{}: recorded {recorded} vs direct {direct}",
            detector.id()
        );
    }
}

#[test]
fn best_f1_threshold_actually_achieves_reported_f1() {
    let family = family_by_name("IOPS").expect("family exists");
    let ts = generate_series(&family, 600, 3, "f1-it");
    let labels = ts.point_labels();
    for detector in default_model_set(5) {
        let scores = detector.score(&ts.values);
        let (f1, threshold) = best_f1(&scores, &labels);
        if !threshold.is_finite() {
            continue;
        }
        let counts = Counts::at_threshold(&scores, &labels, threshold);
        assert!(
            (counts.f1() - f1).abs() < 1e-9,
            "{}: reported {f1} vs recomputed {}",
            detector.id(),
            counts.f1()
        );
    }
}

#[test]
fn auc_roc_and_pr_agree_on_perfect_and_inverted_detectors() {
    // An oracle "detector" that outputs the label gets AUC 1.0 on both
    // metrics; its inversion gets ROC 0 (PR stays > 0 by definition).
    let family = family_by_name("NAB").expect("family exists");
    let ts = generate_series(&family, 400, 9, "roc-it");
    let labels = ts.point_labels();
    let oracle: Vec<f64> = labels.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let inverted: Vec<f64> = oracle.iter().map(|v| 1.0 - v).collect();
    assert!((auc_pr(&oracle, &labels) - 1.0).abs() < 1e-12);
    assert!((auc_roc(&oracle, &labels) - 1.0).abs() < 1e-12);
    assert!(auc_roc(&inverted, &labels) < 1e-12);
}

#[test]
fn model_set_ordering_is_stable_across_seeds() {
    // Seeds change detector internals, never the set's identity/order —
    // the selector class indices depend on this.
    for seed in [0u64, 1, 99, 12345] {
        let set = default_model_set(seed);
        let ids: Vec<ModelId> = set.iter().map(|d| d.id()).collect();
        assert_eq!(ids, ModelId::ALL.to_vec(), "seed {seed}");
    }
}
