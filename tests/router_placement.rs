//! Property tests for the consistent-hash placement ring behind
//! `ShardedRouter`:
//!
//! * **Balance** — at realistic selector counts the busiest shard carries
//!   a bounded multiple of the ideal (uniform) load, and no shard starves.
//! * **Stability** — growing the ring from N to N+1 shards relocates only
//!   selectors that move *to* the new shard (never between two old
//!   shards), and only about 1/(N+1) of them.
//!
//! The proptest shim draws deterministic cases from a fixed per-test
//! seed, so the empirical bounds below are exact regression pins, not
//! flaky statistical hopes.

use kdselector::core::serve::HashRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Balance: with 64 vnodes per shard, the max/ideal load factor stays
    /// small and every shard gets work.
    fn ring_balances_load(
        shards in 2usize..=8,
        selectors in 100usize..=400,
        salt in 0u64..1_000_000,
    ) {
        let ring = HashRing::new(shards, 64);
        let mut counts = vec![0usize; shards];
        for i in 0..selectors {
            counts[ring.place(&format!("sel-{salt}-{i}"))] += 1;
        }
        let ideal = selectors as f64 / shards as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap();
        prop_assert!(
            max <= ideal * 2.0 + 8.0,
            "busiest shard {max} vs ideal {ideal:.1} (shards={shards}, n={selectors}): {counts:?}"
        );
        prop_assert!(
            min > 0,
            "no shard may starve at n={selectors}, shards={shards}: {counts:?}"
        );
    }

    /// Stability: adding one shard only relocates selectors TO the new
    /// shard, and roughly the expected 1/(N+1) fraction of them.
    fn ring_growth_is_stable(
        shards in 2usize..=8,
        selectors in 100usize..=400,
        salt in 0u64..1_000_000,
    ) {
        let before = HashRing::new(shards, 64);
        let after = HashRing::new(shards + 1, 64);
        let mut moved = 0usize;
        for i in 0..selectors {
            let name = format!("sel-{salt}-{i}");
            let (old, new) = (before.place(&name), after.place(&name));
            if old != new {
                prop_assert_eq!(
                    new, shards,
                    "{} moved {} → {}: consistent growth may only move keys to the NEW shard",
                    name, old, new
                );
                moved += 1;
            }
        }
        let expected = selectors as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) <= expected * 2.5 + 8.0,
            "{moved} moved vs ~{expected:.1} expected (shards {shards}→{}, n={selectors})",
            shards + 1
        );
    }

    /// Placement is a pure function of (ring geometry, name): two rings
    /// built with the same parameters agree on every key.
    fn ring_is_deterministic(shards in 1usize..=8, vnodes in 1usize..=128, salt in 0u64..1_000_000) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        for i in 0..50 {
            let name = format!("k-{salt}-{i}");
            prop_assert_eq!(a.place(&name), b.place(&name));
            prop_assert!(a.place(&name) < shards);
        }
    }
}
