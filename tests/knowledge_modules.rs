//! Cross-crate behaviour of the knowledge modules (PISL soft labels, MKI
//! embeddings) on real pipeline data.

mod common;

use kdselector::core::dataset::metadata_text;
use kdselector::core::train::{MkiConfig, PislConfig, TrainConfig};
use kdselector::text::FrozenTextEncoder;

#[test]
fn soft_labels_agree_with_hard_labels_at_low_temperature() {
    let pipeline = common::tiny_pipeline("pisl");
    let ds = &pipeline.dataset;
    for i in (0..ds.len()).step_by(7) {
        let soft = ds.soft_label(i, 0.05);
        let argmax = soft
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        assert_eq!(argmax, ds.hard_labels[i], "window {i}");
        let sum: f32 = soft.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
    common::cleanup("pisl");
}

#[test]
fn metadata_embeddings_cluster_by_family() {
    let pipeline = common::tiny_pipeline("mki");
    // Two series of the same family should have more similar metadata
    // embeddings than two series of different families, because the
    // rendered text shares the dataset name and the domain description.
    let enc = FrozenTextEncoder::new(256, 0xBEB7);
    let texts: Vec<String> = pipeline.benchmark.train.iter().map(metadata_text).collect();
    let embeds: Vec<Vec<f32>> = texts.iter().map(|t| enc.encode(t)).collect();
    // With 1 train series per family, test same-family via train/test pairs.
    let ecg_train = pipeline
        .benchmark
        .train
        .iter()
        .position(|t| t.dataset == "ECG")
        .expect("ECG series");
    let ecg_test = pipeline
        .benchmark
        .test
        .iter()
        .find(|t| t.dataset == "ECG")
        .expect("ECG test series");
    let mgab_train = pipeline
        .benchmark
        .train
        .iter()
        .position(|t| t.dataset == "MGAB")
        .expect("MGAB series");
    let ecg_test_embed = enc.encode(&metadata_text(ecg_test));
    let same = FrozenTextEncoder::cosine(&embeds[ecg_train], &ecg_test_embed);
    let diff = FrozenTextEncoder::cosine(&embeds[ecg_train], &embeds[mgab_train]);
    assert!(same > diff, "same-family {same} vs cross-family {diff}");
    common::cleanup("mki");
}

#[test]
fn pisl_alpha_zero_equals_standard_training() {
    let pipeline = common::tiny_pipeline("alpha0");
    let base = pipeline.config.train;
    let standard = pipeline.train_nn_with(&base, "standard");
    let alpha0 = pipeline.train_nn_with(
        &TrainConfig {
            pisl: Some(PislConfig {
                alpha: 0.0,
                t_soft: 0.25,
            }),
            ..base
        },
        "alpha0",
    );
    // α = 0 removes the soft term entirely: identical training trajectory.
    assert_eq!(standard.stats.epoch_loss, alpha0.stats.epoch_loss);
    assert_eq!(standard.report.selections, alpha0.report.selections);
    common::cleanup("alpha0");
}

#[test]
fn mki_lambda_zero_matches_standard_selections() {
    let pipeline = common::tiny_pipeline("lambda0");
    let base = pipeline.config.train;
    let standard = pipeline.train_nn_with(&base, "standard");
    let lambda0 = pipeline.train_nn_with(
        &TrainConfig {
            mki: Some(MkiConfig {
                lambda: 0.0,
                hidden: 16,
                proj_dim: 8,
                ..MkiConfig::default()
            }),
            ..base
        },
        "lambda0",
    );
    // λ = 0 zeroes the InfoNCE gradients; the selector path is untouched
    // (the extra MLPs still consume RNG, so trajectories may differ —
    // but the classifier loss must match at epoch 0 before any divergence).
    assert!((standard.stats.epoch_loss[0] - lambda0.stats.epoch_loss[0]).abs() < 1e-6);
    common::cleanup("lambda0");
}
