//! PA vs InfoBatch vs full-data training (the paper's Table 2,
//! example-sized).
//!
//! All three runs keep PISL + MKI on (the paper's protocol) and differ only
//! in the pruning strategy. The point of the demo: PA examines the fewest
//! samples — and therefore trains fastest — with near-lossless accuracy.
//!
//! ```sh
//! cargo run --release --example pruning_acceleration
//! ```

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::prune::PruningStrategy;
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use tsdata::BenchmarkConfig;

fn main() {
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 3,
        test_series_per_family: 2,
        series_length: 600,
        seed: 5,
    };
    cfg.train = TrainConfig {
        epochs: 10,
        width: 6,
        ..TrainConfig::knowledge_enhanced(Architecture::ResNet)
    };
    let pipeline = Pipeline::prepare(cfg).expect("label generation");
    let base = pipeline.config.train;

    let variants: Vec<(&str, PruningStrategy)> = vec![
        ("Full data", PruningStrategy::None),
        ("+InfoBatch", PruningStrategy::info_batch_default()),
        ("+PA (Ours)", PruningStrategy::pa_default()),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>16}",
        "Method", "AUC-PR", "Time (s)", "Samples visited"
    );
    let mut full_time = None;
    for (name, pruning) in variants {
        let cfg = TrainConfig { pruning, ..base };
        let outcome = pipeline.train_nn_with(&cfg, name);
        let t = outcome.stats.train_seconds;
        let saved = full_time
            .map(|ft: f64| format!(" (−{:.0}%)", (1.0 - t / ft) * 100.0))
            .unwrap_or_default();
        if full_time.is_none() {
            full_time = Some(t);
        }
        println!(
            "{:<12} {:>10.4} {:>9.1}{saved:<6} {:>13.0}%",
            name,
            outcome.report.average_auc_pr(),
            t,
            outcome.stats.examined_fraction() * 100.0,
        );
    }
}
