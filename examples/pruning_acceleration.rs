//! PA vs InfoBatch vs full-data training (the paper's Table 2,
//! example-sized) on the session API, plus checkpoint/resume.
//!
//! All three runs keep PISL + MKI on (the paper's protocol) and differ
//! only in the pruning strategy. The point of the demo: PA examines the
//! fewest samples — and therefore trains fastest — with near-lossless
//! accuracy. The PA run is additionally **interrupted at the halfway
//! epoch, checkpointed to disk, and resumed**, and the example verifies
//! the resumed selector's AUC-PR equals the uninterrupted run's exactly
//! (the session determinism contract).
//!
//! ```sh
//! cargo run --release --example pruning_acceleration
//! ```

use kdselector::core::manage::SelectorStore;
use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::prune::PruningStrategy;
use kdselector::core::selector::NnSelector;
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use tsdata::BenchmarkConfig;

fn main() {
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 3,
        test_series_per_family: 2,
        series_length: 600,
        seed: 5,
    };
    cfg.train = TrainConfig {
        epochs: 10,
        width: 6,
        ..TrainConfig::knowledge_enhanced(Architecture::ResNet)
    };
    let pipeline = Pipeline::prepare(cfg).expect("label generation");
    let base = pipeline.config.train;

    let variants: Vec<(&str, PruningStrategy)> = vec![
        ("Full data", PruningStrategy::None),
        ("+InfoBatch", PruningStrategy::info_batch_default()),
        ("+PA (Ours)", PruningStrategy::pa_default()),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>16}",
        "Method", "AUC-PR", "Time (s)", "Samples visited"
    );
    let mut full_time = None;
    let mut pa_auc = None;
    for (name, pruning) in variants {
        let cfg = TrainConfig { pruning, ..base };
        // Drive the session to completion; the per-epoch loop is where the
        // examined counts (pruning's whole point) are visible live.
        let mut session = pipeline.train_session(&cfg);
        let mut examined = Vec::with_capacity(cfg.epochs);
        while !session.is_complete() {
            examined.push(session.run_epoch(&pipeline.dataset).examined);
        }
        let (model, stats) = session.finish();
        let selector = NnSelector::new(name, model, pipeline.config.window);
        let report = pipeline.evaluate_selector(&selector);

        let t = stats.train_seconds;
        let saved = full_time
            .map(|ft: f64| format!(" (−{:.0}%)", (1.0 - t / ft) * 100.0))
            .unwrap_or_default();
        if full_time.is_none() {
            full_time = Some(t);
        }
        let auc = report.average_auc_pr();
        if name == "+PA (Ours)" {
            pa_auc = Some(auc);
        }
        println!(
            "{:<12} {:>10.4} {:>9.1}{saved:<6} {:>13.0}%",
            name,
            auc,
            t,
            stats.examined_fraction() * 100.0,
        );
        eprintln!("  per-epoch examined: {examined:?}");
    }

    // --- Checkpoint/resume: interrupt the PA run halfway, persist the ---
    // --- session, resume from disk, and land on the identical result. ---
    let pa_cfg = TrainConfig {
        pruning: PruningStrategy::pa_default(),
        ..base
    };
    let store_dir = std::env::temp_dir().join(format!("kdsel-example-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SelectorStore::open(&store_dir).expect("store");

    let mut interrupted = pipeline.train_session(&pa_cfg);
    for _ in 0..pa_cfg.epochs / 2 {
        interrupted.run_epoch(&pipeline.dataset);
    }
    interrupted
        .save_checkpoint(&store, "pa-halfway")
        .expect("checkpoint persists");
    drop(interrupted); // the "crash"

    let mut resumed =
        kdselector::core::train::TrainSession::resume_from(&store, "pa-halfway", &pipeline.dataset)
            .expect("checkpoint resumes");
    println!(
        "\nresumed PA session from disk at epoch {}/{}",
        resumed.epoch(),
        pa_cfg.epochs
    );
    resumed.run_to_completion(&pipeline.dataset);
    let (resumed_model, _) = resumed.finish();
    let resumed_auc = pipeline
        .evaluate_selector(&NnSelector::new(
            "+PA resumed",
            resumed_model,
            pipeline.config.window,
        ))
        .average_auc_pr();
    let straight_auc = pa_auc.expect("PA variant ran");
    assert_eq!(
        resumed_auc, straight_auc,
        "resumed run must reproduce the uninterrupted run exactly"
    );
    println!("resume is bitwise-faithful: AUC-PR {resumed_auc:.4} == {straight_auc:.4}");
    let _ = std::fs::remove_dir_all(&store_dir);
}
