//! Fault-tolerant serving through the supervised sharded tier.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_serving
//! ```
//!
//! Trains a quick selector, persists it, and registers it under several
//! names on a 4-shard `ShardedRouter` — then injects the failure modes
//! the tier is built to absorb and shows what each one turns into:
//!
//! * **admission rejects** → transparent bounded retries;
//! * **a worker-thread panic** → the supervisor respawns the shard from
//!   the `SelectorStore` and the retried request gets the exact bits the
//!   old worker would have served;
//! * **persistent scoring panics** → the per-(shard, selector) circuit
//!   breaker trips and requests degrade to the cheap non-NN fallback
//!   (replies marked `degraded`) until a half-open probe heals it;
//! * **a wedged (stalled) worker** → the per-request deadline bounds the
//!   caller's wait (degraded reply, never a hang) while the supervisor
//!   detects the stagnant heartbeat and respawns the shard;
//! * **live migration** → a selector moves to another shard under
//!   traffic with the exactly-old-or-exactly-new guarantee.
//!
//! Every injected fault is a count-based `FaultRule`, so the same seed
//! and schedule replay the same recovery outcomes and the same served
//! bits (attempt counts and lifetime counters vary with scheduling —
//! `tests/serve_router.rs` pins exactly what is bitwise-replayable).

use kdselector::core::manage::SelectorStore;
use kdselector::core::nonnn::{FeatureModel, FeatureSelector};
use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::serve::{
    BreakerConfig, FaultAction, FaultPlan, FaultPoint, FaultRule, RetryPolicy, RouteOptions,
    RouterConfig, SelectRequest, ShardedRouter,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Offline: quick-train a selector, persist it, and fit the cheap
    //    feature-based fallback the tier degrades to when a primary is
    //    unavailable.
    println!("Preparing benchmark + training a quick selector...");
    let pipeline = Pipeline::prepare(PipelineConfig::quick()).expect("label generation");
    let outcome = pipeline.train_nn_selector();
    let fallback = Arc::new(FeatureSelector::train(
        &pipeline.dataset,
        FeatureModel::Knn,
        pipeline.config.train.seed,
    ));
    let store_dir = std::env::temp_dir().join("kdselector-fault-demo");
    let store = SelectorStore::open(&store_dir).expect("store");
    let names = ["sel-a", "sel-b", "sel-c", "sel-d"];
    for name in names {
        store
            .save(name, &outcome.selector.model, "fault_tolerant_serving demo")
            .expect("save");
    }

    // 2. The fault schedule. Count-based rules (`times(n)`) spend a fixed
    //    budget and then stop firing, which is what makes the recovery
    //    paths replayable.
    let plan = Arc::new(
        FaultPlan::new()
            // sel-a: two rejects at admission — retries absorb them.
            .with(
                FaultRule::at(FaultPoint::Submit, FaultAction::Reject)
                    .on_selector("sel-a")
                    .times(2),
            )
            // sel-b: one worker-killing panic — supervision absorbs it.
            .with(
                FaultRule::at(
                    FaultPoint::Group,
                    FaultAction::Panic("drill: worker down".into()),
                )
                .on_selector("sel-b")
                .times(1),
            )
            // sel-c: six scoring panics (= max attempts) — the breaker
            // trips and traffic degrades to the fallback.
            .with(
                FaultRule::at(
                    FaultPoint::Score,
                    FaultAction::Panic("drill: score bomb".into()),
                )
                .on_selector("sel-c")
                .times(6),
            )
            // sel-d: one 250 ms stall — the deadline bounds the caller
            // while the supervisor respawns the wedged worker.
            .with(
                FaultRule::at(
                    FaultPoint::Group,
                    FaultAction::Stall(Duration::from_millis(250)),
                )
                .on_selector("sel-d")
                .times(1),
            ),
    );

    // 3. Service startup: a 4-shard tier with fast supervision and enough
    //    retry budget to ride out a respawn, loading every selector from
    //    the store onto its ring-placed shard.
    let router = ShardedRouter::with_fault_injection(
        RouterConfig {
            shards: 4,
            retry: RetryPolicy {
                max_retries: 5,
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(10),
            },
            // Trip after 3 consecutive failures; while open, every 2nd
            // arrival is a half-open probe.
            breaker: BreakerConfig {
                trip_after: 3,
                probe_every: 2,
            },
            supervise_every: Duration::from_millis(2),
            seed: 42,
            ..RouterConfig::default()
        },
        plan,
    );
    for name in names {
        router
            .register_from_store(&store, name, pipeline.config.window)
            .expect("register from store");
    }
    router.set_fallback(fallback);
    for name in names {
        println!("  {name} → shard {}", router.shard_of(name));
    }

    // The injected panics below are deliberate; keep their backtraces out
    // of the demo output.
    std::panic::set_hook(Box::new(|_| {}));
    println!("\n(injected worker panics silenced for readability)");

    let request =
        |name: &str, i: usize| SelectRequest::new(name, vec![pipeline.benchmark.test[i].clone()]);

    // 4. Rejects: the router retries with deterministic jittered backoff.
    let reply = router
        .route(&request("sel-a", 0))
        .expect("retries cover rejects");
    println!(
        "\nsel-a (2 injected rejects): served on shard {:?} after {} attempts, degraded: {}",
        reply.shard, reply.attempts, reply.degraded
    );

    // 5. Worker death: the first attempt dies with the worker; the
    //    supervisor respawns the shard (re-registering its selectors from
    //    the store) and a retry lands on the fresh worker.
    let reply = router
        .route(&request("sel-b", 1))
        .expect("supervision covers the panic");
    let again = router
        .route(&request("sel-b", 1))
        .expect("respawned worker serves");
    let health = &router.stats().shards[router.shard_of("sel-b")];
    println!(
        "sel-b (worker panic):       served after {} attempts, shard respawns: {}, \
         bits stable across the respawn: {}",
        reply.attempts,
        health.respawns,
        reply.selections == again.selections,
    );

    // 6. Breaker: six straight scoring panics burn every attempt, trip the
    //    (shard, selector) breaker, and the reply comes from the fallback,
    //    marked degraded. Follow-up arrivals shed straight to the fallback
    //    until a half-open probe succeeds and closes the breaker.
    let reply = router
        .route(&request("sel-c", 2))
        .expect("fallback answers");
    let open = router
        .stats()
        .shards
        .iter()
        .map(|s| s.breakers_open)
        .sum::<usize>();
    println!(
        "sel-c (persistent panics):  degraded: {} (fallback answered; {open} breaker(s) open)",
        reply.degraded
    );
    let reply = router
        .route(&request("sel-c", 2))
        .expect("shed to fallback");
    println!(
        "sel-c (breaker open):       degraded: {} after {} attempts (shed)",
        reply.degraded, reply.attempts
    );
    let reply = router.route(&request("sel-c", 2)).expect("probe heals");
    let open = router
        .stats()
        .shards
        .iter()
        .map(|s| s.breakers_open)
        .sum::<usize>();
    println!(
        "sel-c (half-open probe):    degraded: {} ({open} breaker(s) open — the probe healed it)",
        reply.degraded
    );

    // 7. Deadline on a wedged worker: the caller gets a degraded reply
    //    within its budget — never a hang — and the supervisor replaces
    //    the stalled worker behind the scenes.
    let reply = router
        .route_with(
            &request("sel-d", 3),
            RouteOptions {
                deadline: Some(Duration::from_millis(60)),
            },
        )
        .expect("deadline degrades instead of hanging");
    println!(
        "sel-d (250 ms stall):       degraded: {} (answered within the 60 ms budget)",
        reply.degraded
    );
    std::thread::sleep(Duration::from_millis(100)); // let supervision catch the wedge
    let reply = router
        .route(&request("sel-d", 3))
        .expect("respawned worker serves");
    println!(
        "sel-d (after respawn):      degraded: {} (primary is back)",
        reply.degraded
    );

    let _ = std::panic::take_hook();

    // 8. Live migration: move sel-a to the next shard under traffic.
    let from = router.shard_of("sel-a");
    let to = (from + 1) % 4;
    router.migrate("sel-a", to).expect("drained hand-off");
    let reply = router
        .route(&request("sel-a", 4))
        .expect("serves from the new shard");
    println!(
        "\nmigrated sel-a: shard {from} → {to}, now served on shard {:?}",
        reply.shard
    );

    // 9. The tier's own accounting.
    let stats = router.stats();
    println!(
        "\nrouter: {} routed, {} degraded, {} failed, {} retries",
        stats.routed, stats.degraded, stats.failed, stats.retries
    );
    for shard in &stats.shards {
        println!(
            "  shard {}: alive {}, generation {}, admitted {}, served {}, rejected {}, panicked {}",
            shard.shard,
            shard.alive,
            shard.generation,
            shard.queue.admitted,
            shard.queue.served,
            shard.queue.rejected,
            shard.queue.panicked,
        );
    }
    router.shutdown();

    let _ = std::fs::remove_dir_all(&store_dir);
}
