//! Quickstart: train a KDSelector-enhanced selector and use it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small synthetic TSB-UAD-like benchmark, materialises the
//! historical data (all 12 detectors run on every training series — cached
//! under `target/kdsel-cache/`), trains a ResNet selector with PISL + MKI +
//! PA, and applies it: model selection + anomaly detection on a test series.

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use kdselector::detectors::default_model_set;
use kdselector::metrics::{auc_pr, best_f1};
use tsdata::BenchmarkConfig;

fn main() {
    // 1. A small benchmark: 16 dataset families, 1 train + 1 test series
    //    each, 500 points per series.
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 2,
        test_series_per_family: 1,
        series_length: 500,
        seed: 42,
    };
    // The full KDSelector: PISL soft labels + MKI metadata knowledge + PA
    // pruning, on a ResNet encoder.
    cfg.train = TrainConfig {
        epochs: 8,
        width: 6,
        ..TrainConfig::kdselector(Architecture::ResNet)
    };

    println!("Preparing benchmark + historical data (first run computes labels)...");
    let pipeline = Pipeline::prepare(cfg).expect("label generation");
    println!(
        "  {} training windows from {} series; oracle AUC-PR {:.3}",
        pipeline.dataset.len(),
        pipeline.benchmark.train.len(),
        pipeline.test_perf.oracle_mean()
    );

    // 2. Selector learning.
    println!("Training the selector (ResNet + PISL + MKI + PA)...");
    let outcome = pipeline.train_nn_selector();
    println!(
        "  trained in {:.1}s, examined {:.0}% of sample visits (PA pruning)",
        outcome.stats.train_seconds,
        outcome.stats.examined_fraction() * 100.0
    );
    println!(
        "  average selected-model AUC-PR: {:.3}",
        outcome.report.average_auc_pr()
    );

    // 3. Model selection + anomaly detection on one test series. The
    //    selector is immutable at inference — `select` takes `&self`.
    let ts = &pipeline.benchmark.test[0];
    let selector = outcome.selector;
    let choice = {
        use kdselector::core::selector::Selector;
        selector.select(ts)
    };
    println!(
        "\nTest series {} ({}): selected model = {}",
        ts.id, ts.dataset, choice
    );

    let detector = default_model_set(7)
        .into_iter()
        .find(|d| d.id() == choice)
        .expect("model set contains the choice");
    let scores = detector.score(&ts.values);
    let labels = ts.point_labels();
    let (f1, threshold) = best_f1(&scores, &labels);
    println!(
        "  detection: AUC-PR {:.3}, best F1 {:.3} at threshold {:.3}",
        auc_pr(&scores, &labels),
        f1,
        threshold
    );
    println!(
        "  ground truth: {} anomalies totalling {} points",
        ts.anomalies.len(),
        ts.anomaly_lengths().iter().sum::<usize>()
    );
}
