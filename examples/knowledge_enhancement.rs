//! PISL & MKI ablation (the paper's Table 1, example-sized) on the
//! session API.
//!
//! Trains the same ResNet selector four ways — Standard, +PISL, +MKI,
//! +PISL&MKI — by driving a `TrainSession` epoch by epoch, prints
//! per-dataset AUC-PR plus training time, and finally **deploys** the full
//! knowledge-enhanced selector into a live `SelectorEngine` the way a
//! continuously retrained service would.
//!
//! ```sh
//! cargo run --release --example knowledge_enhancement
//! ```

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::serve::SelectorEngine;
use kdselector::core::train::{MkiConfig, PislConfig, TrainConfig};
use kdselector::core::Architecture;
use tsdata::BenchmarkConfig;

fn main() {
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 3,
        test_series_per_family: 2,
        series_length: 600,
        seed: 5,
    };
    cfg.train = TrainConfig {
        arch: Architecture::ResNet,
        epochs: 8,
        width: 6,
        ..TrainConfig::default()
    };
    let pipeline = Pipeline::prepare(cfg).expect("label generation");

    let base = pipeline.config.train;
    let variants: Vec<(&str, TrainConfig)> = vec![
        ("Standard", base),
        (
            "+PISL",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                ..base
            },
        ),
        (
            "+MKI",
            TrainConfig {
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
        (
            "+PISL&MKI",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
    ];

    // A live engine: every variant is deployed (hot-swapped) under the
    // same name the moment its session finishes, exactly the
    // retrain-and-redeploy loop a serving system runs.
    let engine = SelectorEngine::with_window_cache(64);
    let window = pipeline.config.window;

    println!("{:<12} {:>10} {:>12}", "Method", "AUC-PR", "Time (s)");
    let mut standard_auc = 0.0;
    for (name, cfg) in variants {
        // Drive the session epoch by epoch (run_to_completion would do the
        // same; the explicit loop is where a caller could checkpoint,
        // early-stop, or report progress).
        let mut session = pipeline.train_session(&cfg);
        while !session.is_complete() {
            let report = session.run_epoch(&pipeline.dataset);
            if report.epoch == 0 || session.is_complete() {
                eprintln!(
                    "  [{name}] epoch {:>2}: loss {:.4}, acc {:.2}, {} windows",
                    report.epoch, report.loss, report.accuracy, report.examined
                );
            }
        }
        let (model, stats) = session.finish();

        // Deploy into the live engine (hot-swap under a stable name),
        // then evaluate through the served handle — the same artefact
        // concurrent callers would be selecting with.
        engine
            .deploy("selector", model, window)
            .expect("window length matches");
        let served = engine.get("selector").expect("just deployed");
        let report = pipeline.evaluate_selector(&*served);
        let auc = report.average_auc_pr();
        if name == "Standard" {
            standard_auc = auc;
        }
        println!("{:<12} {:>10.4} {:>12.1}", name, auc, stats.train_seconds);
    }

    // The engine now serves the last deployed variant; selections on the
    // test split come from the hot-swapped registry entry.
    let selections = engine
        .select_batch("selector", &pipeline.benchmark.test)
        .expect("deployed selector serves");
    println!(
        "\nlive engine serves {:?} → {} selections (first: {} at margin {:.2})",
        engine.names(),
        selections.len(),
        selections[0].model,
        selections[0].margin,
    );
    println!("(Standard = hard labels only; improvements over {standard_auc:.4} come from");
    println!(" the detector-performance soft labels and the metadata InfoNCE term.)");
}
