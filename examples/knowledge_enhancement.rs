//! PISL & MKI ablation (the paper's Table 1, example-sized).
//!
//! Trains the same ResNet selector four ways — Standard, +PISL, +MKI,
//! +PISL&MKI — and prints per-dataset AUC-PR plus training time, showing
//! that the knowledge modules improve accuracy with negligible overhead.
//!
//! ```sh
//! cargo run --release --example knowledge_enhancement
//! ```

use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::train::{MkiConfig, PislConfig, TrainConfig};
use kdselector::core::Architecture;
use tsdata::BenchmarkConfig;

fn main() {
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 3,
        test_series_per_family: 2,
        series_length: 600,
        seed: 5,
    };
    cfg.train = TrainConfig {
        arch: Architecture::ResNet,
        epochs: 8,
        width: 6,
        ..TrainConfig::default()
    };
    let pipeline = Pipeline::prepare(cfg).expect("label generation");

    let base = pipeline.config.train;
    let variants: Vec<(&str, TrainConfig)> = vec![
        ("Standard", base),
        (
            "+PISL",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                ..base
            },
        ),
        (
            "+MKI",
            TrainConfig {
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
        (
            "+PISL&MKI",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
    ];

    println!("{:<12} {:>10} {:>12}", "Method", "AUC-PR", "Time (s)");
    let mut standard_auc = 0.0;
    for (name, cfg) in variants {
        let outcome = pipeline.train_nn_with(&cfg, name);
        let auc = outcome.report.average_auc_pr();
        if name == "Standard" {
            standard_auc = auc;
        }
        println!(
            "{:<12} {:>10.4} {:>12.1}",
            name, auc, outcome.stats.train_seconds
        );
    }
    println!("\n(Standard = hard labels only; improvements over {standard_auc:.4} come from");
    println!(" the detector-performance soft labels and the metadata InfoNCE term.)");
}
