//! Serving many series through the batch-first `SelectorEngine`.
//!
//! ```sh
//! cargo run --release --example serve_many
//! ```
//!
//! Trains a quick selector, persists it, loads it back into a
//! `SelectorEngine` (the path a service takes at startup), and serves a
//! batched `SelectRequest` — once from one thread and once from four
//! concurrent threads — printing the structured `Selection`s and the
//! throughput. The engine is deterministic: every serving path returns
//! bit-identical results at any `KD_THREADS` setting.

use kdselector::core::manage::SelectorStore;
use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::serve::{SelectRequest, SelectorEngine};
use std::time::Instant;

fn main() {
    // 1. Train a quick selector and persist it, as an offline job would.
    println!("Preparing benchmark + training a quick selector...");
    let pipeline = Pipeline::prepare(PipelineConfig::quick()).expect("label generation");
    let outcome = pipeline.train_nn_selector();
    let store_dir = std::env::temp_dir().join("kdselector-serve-demo");
    let store = SelectorStore::open(&store_dir).expect("store");
    store
        .save("resnet", &outcome.selector.model, "serve_many demo")
        .expect("save");

    // 2. Service startup: load the registry from the store.
    let mut engine = SelectorEngine::new();
    engine
        .load(&store, "resnet", pipeline.config.window)
        .expect("load");
    println!("engine ready with selectors: {:?}", engine.names());

    // 3. Serve one batched request over the whole test split.
    let request = SelectRequest::new("resnet", pipeline.benchmark.test.clone());
    let t = Instant::now();
    let selections = engine.handle(&request).expect("registered selector");
    let secs = t.elapsed().as_secs_f64();
    println!(
        "\nserved {} series in {:.1} ms ({:.0} selections/sec):",
        selections.len(),
        secs * 1e3,
        selections.len() as f64 / secs
    );
    for (ts, sel) in request.batch.iter().zip(&selections).take(6) {
        println!(
            "  {:<12} → {:<10} ({}/{} windows, margin {:.2})",
            ts.id,
            sel.model.name(),
            sel.votes[sel.model.index()],
            sel.windows,
            sel.margin
        );
    }
    if selections.len() > 6 {
        println!("  ... and {} more", selections.len() - 6);
    }

    // 4. The same engine from four concurrent threads — same answers.
    let concurrent = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| engine.handle(&request).expect("registered selector")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving thread"))
            .collect::<Vec<_>>()
    });
    let all_agree = concurrent.iter().all(|r| *r == selections);
    println!("\n4 concurrent serving threads agree with the serial result: {all_agree}");
    assert!(all_agree, "serving must be deterministic");

    let _ = std::fs::remove_dir_all(&store_dir);
}
