//! Serving many series through the queued `ServeQueue` front-end.
//!
//! ```sh
//! cargo run --release --example serve_many
//! ```
//!
//! Trains a quick selector, persists it, loads it back into a
//! `SelectorEngine` with a content-keyed window cache (the path a service
//! takes at startup), and serves the test split two ways:
//!
//! 1. one direct batched `SelectRequest` through `engine.handle`, and
//! 2. the same series as many small concurrent requests submitted by four
//!    producer threads through a `ServeQueue`, which coalesces them back
//!    into engine batches.
//!
//! The queued responses are asserted bit-identical to the direct batch —
//! the serving determinism contract — and the window-cache stats show
//! repeat series skipping re-windowing.

use kdselector::core::manage::SelectorStore;
use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::serve::{QueueConfig, SelectRequest, Selection, SelectorEngine, ServeQueue};
use std::sync::Arc;
// kdlint: allow(wallclock): demo throughput reporting only.
use std::time::Instant;

fn main() {
    // 1. Train a quick selector and persist it, as an offline job would.
    println!("Preparing benchmark + training a quick selector...");
    let pipeline = Pipeline::prepare(PipelineConfig::quick()).expect("label generation");
    let outcome = pipeline.train_nn_selector();
    let store_dir = std::env::temp_dir().join("kdselector-serve-demo");
    let store = SelectorStore::open(&store_dir).expect("store");
    store
        .save("resnet", &outcome.selector.model, "serve_many demo")
        .expect("save");

    // 2. Service startup: load the registry (plus a window cache) from the
    //    store. `load` takes `&self`, so selectors can also be hot-swapped
    //    later while the queue below is serving.
    let engine = Arc::new(SelectorEngine::with_window_cache(256));
    engine
        .load(&store, "resnet", pipeline.config.window)
        .expect("load");
    println!("engine ready with selectors: {:?}", engine.names());

    // 3. Reference: one direct batched request over the whole test split.
    let request = SelectRequest::new("resnet", pipeline.benchmark.test.clone());
    // kdlint: allow(wallclock): demo throughput reporting only.
    let t = Instant::now();
    let direct = engine.handle(&request).expect("registered selector");
    let secs = t.elapsed().as_secs_f64();
    println!(
        "\ndirect batch: {} series in {:.1} ms ({:.0} selections/sec):",
        direct.len(),
        secs * 1e3,
        direct.len() as f64 / secs
    );
    for (ts, sel) in request.batch.iter().zip(&direct).take(6) {
        println!(
            "  {:<12} → {:<10} ({}/{} windows, margin {:.2})",
            ts.id,
            sel.model.name(),
            sel.votes[sel.model.index()],
            sel.windows,
            sel.margin
        );
    }
    if direct.len() > 6 {
        println!("  ... and {} more", direct.len() - 6);
    }

    // 4. The queued front-end: the same series as many small requests from
    //    four concurrent producers. The coalescer merges consecutive
    //    same-selector requests into engine batches (up to max_batch) and
    //    completes tickets in submission order; a bounded queue depth gives
    //    overload a defined failure (ServeError::Overloaded) instead of
    //    unbounded latency.
    let queue = ServeQueue::new(
        Arc::clone(&engine),
        QueueConfig {
            max_depth: 256,
            max_batch: 32,
        },
    );
    let series = &pipeline.benchmark.test;
    // kdlint: allow(wallclock): demo throughput reporting only.
    let t = Instant::now();
    let queued: Vec<(usize, Vec<Selection>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let queue = &queue;
                s.spawn(move || {
                    // Producer p submits every 4th series as its own
                    // request, then redeems its tickets in order.
                    let tickets: Vec<_> = series
                        .iter()
                        .enumerate()
                        .skip(p)
                        .step_by(4)
                        .map(|(i, ts)| {
                            let req = SelectRequest::new("resnet", vec![ts.clone()]);
                            (i, queue.submit(req).expect("admitted"))
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(i, t)| (i, t.wait().expect("served")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("producer thread"))
            .collect()
    });
    let secs = t.elapsed().as_secs_f64();
    println!(
        "\nqueued: {} single-series requests from 4 producers in {:.1} ms \
         ({:.0} selections/sec)",
        queued.len(),
        secs * 1e3,
        queued.len() as f64 / secs
    );
    if let Some(stats) = engine.window_cache().map(|c| c.stats()) {
        println!(
            "window cache: {} hits / {} misses ({} entries)",
            stats.hits, stats.misses, stats.entries
        );
    }

    // 5. The determinism contract: queued-and-coalesced ≡ direct, bitwise.
    let all_agree = queued
        .iter()
        .all(|(i, sels)| sels.as_slice() == &direct[*i..=*i]);
    println!("queued responses agree with the direct batch: {all_agree}");
    assert!(all_agree, "queued serving must be deterministic");

    let _ = std::fs::remove_dir_all(&store_dir);
}
