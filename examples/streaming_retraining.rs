//! The streaming loop end to end: ingest → drift → retrain → hot deploy.
//!
//! ```sh
//! cargo run --release --example streaming_retraining
//! ```
//!
//! A `RetrainDaemon` watches two append-only streams. Stable traffic
//! accrues until the sample quota opens the first (bootstrap) retrain;
//! once that model is live, a level shift on one stream raises a typed
//! drift signal, which opens a second retrain on the grown corpus and
//! hot-swaps the result into the serving engine — while the engine keeps
//! answering requests throughout. The demo then replays the identical
//! append log into a fresh daemon (fresh store) and asserts the decision
//! trace and served selections are bitwise-identical: the whole loop is a
//! pure function of the append log.

use kdselector::core::manage::SelectorStore;
use kdselector::core::serve::{SelectRequest, SelectorEngine, WindowCache};
use kdselector::core::stream::{
    DaemonConfig, DaemonEvent, DriftConfig, LabelOracle, RetrainDaemon,
};
use kdselector::core::train::TrainConfig;
use kdselector::core::{Architecture, PruningStrategy};
use std::sync::Arc;
use tsdata::{TimeSeries, WindowConfig};

/// Demo oracle: the "best detector" tracks the series mean, so the
/// post-shift corpus genuinely relabels (a real deployment would replay
/// labeled logs through `DetectorOracle` instead).
struct MeanOracle;
impl LabelOracle for MeanOracle {
    fn perf_row(&self, ts: &TimeSeries) -> Vec<f64> {
        let mean = ts.values.iter().sum::<f64>() / ts.len().max(1) as f64;
        let best = usize::from(mean >= 1.0);
        (0..12).map(|m| if m == best { 0.9 } else { 0.1 }).collect()
    }
}

fn wave(n: usize, phase: f64, offset: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.18 + phase).sin() + offset)
        .collect()
}

/// The append log both runs replay: stable traffic on two streams, then a
/// level shift on `sensor-a`.
fn append_log() -> Vec<(&'static str, Vec<f64>)> {
    let mut log = vec![
        ("sensor-a", wave(256, 0.0, 0.0)),
        ("sensor-b", wave(256, 1.1, 0.0)),
        ("sensor-a", wave(128, 2.3, 0.0)),
        ("sensor-b", wave(128, 0.4, 0.0)),
    ];
    // After the bootstrap deploy the drift reference re-anchors; feed one
    // more stable chunk, then the shift.
    log.push(("sensor-a", wave(128, 3.1, 0.0)));
    log.push(("sensor-a", wave(128, 3.7, 25.0)));
    log
}

fn run(tag: &str) -> (Vec<String>, Vec<(String, String)>) {
    let store_dir = std::env::temp_dir().join(format!("kdselector-stream-demo-{tag}"));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SelectorStore::open(&store_dir).expect("store");
    let cache = Arc::new(WindowCache::with_byte_budget(64, 4 << 20));
    let engine = Arc::new(SelectorEngine::with_shared_cache(cache));
    let cfg = DaemonConfig {
        selector: "live".to_string(),
        window: WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        },
        train: TrainConfig {
            arch: Architecture::ConvNet,
            width: 4,
            epochs: 2,
            batch_size: 16,
            pruning: PruningStrategy::None,
            ..TrainConfig::default()
        },
        drift: DriftConfig {
            window: 64,
            threshold: 6.0,
        },
        quota: 512,
        min_samples: 512,
        text_dim: 16,
    };
    let mut daemon = RetrainDaemon::new(Arc::clone(&engine), store, Box::new(MeanOracle), cfg);

    let mut trace = Vec::new();
    for (stream, samples) in append_log() {
        let mut events = daemon.ingest(stream, &samples).expect("ingest");
        events.extend(daemon.run_pending().expect("training"));
        for event in events {
            let line = match event {
                DaemonEvent::Drift(sig) => format!(
                    "drift on {} ({:?}): mean {:.3} -> {:.3}, z = {:.1}",
                    sig.channel, sig.kind, sig.reference_mean, sig.observed_mean, sig.zscore
                ),
                DaemonEvent::RetrainStarted {
                    version,
                    reason,
                    windows,
                    ..
                } => format!("retrain v{version} opened ({reason:?}, {windows} windows)"),
                DaemonEvent::EpochCompleted {
                    version,
                    epoch,
                    loss,
                } => {
                    format!("  v{version} epoch {epoch}: loss {loss:.4}")
                }
                DaemonEvent::Deployed { version, selector } => {
                    format!("deployed v{version} as {selector:?} (hot swap)")
                }
            };
            trace.push(line);
        }
        // The engine serves throughout — after the first deploy, every
        // appended prefix is answerable (and cache-published, so serving a
        // just-ingested stream re-windows nothing).
        if daemon.version() > 0 {
            let ts = daemon.ingestor().snapshot(stream).expect("snapshot");
            let sel = engine
                .handle(&SelectRequest::new("live", vec![ts]))
                .expect("serve")
                .remove(0);
            trace.push(format!(
                "  serving {stream}: model {:?}, margin {:.2}",
                sel.model, sel.margin
            ));
        }
    }

    let selections = daemon
        .ingestor()
        .names()
        .into_iter()
        .map(|stream| {
            let ts = daemon.ingestor().snapshot(&stream).expect("snapshot");
            let sel = engine
                .handle(&SelectRequest::new("live", vec![ts]))
                .expect("serve")
                .remove(0);
            (stream, format!("{:?} margin {:.6}", sel.model, sel.margin))
        })
        .collect();
    let _ = std::fs::remove_dir_all(&store_dir);
    (trace, selections)
}

fn main() {
    println!("Live run:");
    let (trace, selections) = run("live");
    for line in &trace {
        println!("  {line}");
    }
    println!("\nFinal selections:");
    for (stream, sel) in &selections {
        println!("  {stream}: {sel}");
    }

    // The replay contract: same append log, fresh daemon and store, same
    // everything — bitwise.
    let (replay_trace, replay_selections) = run("replay");
    assert_eq!(trace, replay_trace, "replay must reproduce the event trace");
    assert_eq!(
        selections, replay_selections,
        "replay must reproduce the selections"
    );
    println!("\nReplay reproduced the full decision trace bitwise. ✓");
}
