//! The full demonstration workflow of the paper's §4, as a program:
//!
//! 1. **Selector learning** — configure and train, inspect the loss curve.
//! 2. **Selector management** — save, list, reload.
//! 3. **Model selection** — per-series votes, like the demo system shows.
//! 4. **Anomaly detection** — run the selected model, compare with an
//!    alternative to validate the selection.
//!
//! ```sh
//! cargo run --release --example model_selection_pipeline
//! ```

use kdselector::core::manage::SelectorStore;
use kdselector::core::pipeline::{Pipeline, PipelineConfig};
use kdselector::core::selector::{majority_vote, NnSelector, Selector};
use kdselector::core::train::TrainConfig;
use kdselector::core::Architecture;
use kdselector::detectors::{default_model_set, ModelId};
use kdselector::metrics::auc_pr;
use tsdata::BenchmarkConfig;

fn main() {
    // --- Step 0: data -------------------------------------------------
    let mut cfg = PipelineConfig::quick();
    cfg.benchmark = BenchmarkConfig {
        train_series_per_family: 2,
        test_series_per_family: 1,
        series_length: 500,
        seed: 21,
    };
    cfg.train = TrainConfig {
        epochs: 8,
        width: 6,
        ..TrainConfig::knowledge_enhanced(Architecture::ResNet)
    };
    let pipeline = Pipeline::prepare(cfg).expect("label generation");

    // --- Step 1: selector learning -------------------------------------
    println!("== Selector learning ==");
    let outcome = pipeline.train_nn_selector();
    for (e, (loss, acc)) in outcome
        .stats
        .epoch_loss
        .iter()
        .zip(&outcome.stats.epoch_accuracy)
        .enumerate()
    {
        println!("  epoch {e:>2}: loss {loss:.4}  train-acc {acc:.3}");
    }
    println!("  training time: {:.1}s", outcome.stats.train_seconds);

    // --- Step 2: selector management -----------------------------------
    println!("\n== Selector management ==");
    let store_dir = std::env::temp_dir().join("kdselector-demo-store");
    let store = SelectorStore::open(&store_dir).expect("store");
    let selector = outcome.selector;
    store
        .save(
            "resnet-kd",
            &selector.model,
            &format!("avg AUC-PR {:.3}", outcome.report.average_auc_pr()),
        )
        .expect("save");
    for m in store.list().expect("list") {
        println!(
            "  saved selector: {} ({:?}, window {}) — {}",
            m.name, m.arch, m.window, m.notes
        );
    }
    let reloaded = store.load("resnet-kd").expect("load");
    let selector = NnSelector::new("resnet-kd", reloaded, pipeline.config.window);

    // --- Step 3: model selection ---------------------------------------
    println!("\n== Model selection ==");
    let ts = &pipeline.benchmark.test[2];
    let votes = selector.window_votes(ts);
    let mut counts = [0usize; 12];
    for &v in &votes {
        counts[v] += 1;
    }
    println!("  series {} ({}) — votes per model:", ts.id, ts.dataset);
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            println!("    {:<10} {:>3} votes", ModelId::from_index(i).name(), c);
        }
    }
    let winner = ModelId::from_index(majority_vote(&votes, 12));
    println!("  majority vote → {winner}");

    // --- Step 4: anomaly detection -------------------------------------
    println!("\n== Anomaly detection ==");
    let labels = ts.point_labels();
    let set = default_model_set(7);
    let chosen = set.iter().find(|d| d.id() == winner).expect("chosen model");
    let chosen_auc = auc_pr(&chosen.score(&ts.values), &labels);
    println!("  {} (selected): AUC-PR {:.3}", winner, chosen_auc);
    // Comparative analysis: run one alternative model.
    let alternative = if winner == ModelId::Hbos {
        ModelId::Mp
    } else {
        ModelId::Hbos
    };
    let alt = set
        .iter()
        .find(|d| d.id() == alternative)
        .expect("alternative model");
    let alt_auc = auc_pr(&alt.score(&ts.values), &labels);
    println!("  {} (alternative): AUC-PR {:.3}", alternative, alt_auc);
    println!(
        "  oracle on this series: {} (AUC-PR {:.3})",
        pipeline.test_perf.best_model(2),
        pipeline
            .test_perf
            .perf_of(2, pipeline.test_perf.best_model(2))
    );
    let _ = std::fs::remove_dir_all(&store_dir);
}
