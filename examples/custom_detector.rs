//! Extending the TSAD model set with a custom detector.
//!
//! The paper's system is designed so "more models can be integrated in the
//! same way" (§2). This example implements a simple robust z-score detector
//! against the [`Detector`] trait, runs it next to the built-in set on a
//! series with point anomalies, and shows where it wins and loses.
//!
//! ```sh
//! cargo run --release --example custom_detector
//! ```

use kdselector::detectors::{default_model_set, Detector, ModelId};
use kdselector::metrics::{auc_pr, auc_roc};
use rand::SeedableRng;
use tsdata::anomaly::{inject, AnomalyKind};
use tsdata::signal::BaseSignal;
use tsdata::TimeSeries;

/// Robust z-score detector: |x − median| / MAD per point.
struct RobustZScore;

impl Detector for RobustZScore {
    fn id(&self) -> ModelId {
        // A real integration would extend `ModelId`; for a drop-in demo we
        // reuse an existing slot's identity only for display purposes.
        ModelId::Hbos
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        if series.is_empty() {
            return Vec::new();
        }
        let mut sorted = series.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mut deviations: Vec<f64> = series.iter().map(|v| (v - median).abs()).collect();
        let mut dev_sorted = deviations.clone();
        dev_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mad = dev_sorted[dev_sorted.len() / 2].max(1e-9);
        for d in &mut deviations {
            *d /= mad;
        }
        let max = deviations
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        deviations.iter().map(|d| d / max).collect()
    }
}

fn labeled_series(kind: AnomalyKind, seed: u64) -> TimeSeries {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut values = BaseSignal::SineMix {
        period: 32,
        harmonics: 1,
    }
    .generate(800, &mut rng);
    let (start, end) = (400, 440);
    inject(&mut values, kind, start, end, 1.0, 32, &mut rng);
    TimeSeries::new(
        format!("custom-{}", kind.name()),
        "Custom",
        values,
        vec![tsdata::AnomalyInterval { start, end, kind }],
    )
}

fn main() {
    let custom = RobustZScore;
    println!(
        "{:<22} {:>14} {:>14} {:>16}",
        "Anomaly kind", "RobustZ AUC-PR", "RobustZ ROC", "Best built-in"
    );
    for kind in [
        AnomalyKind::Spike,
        AnomalyKind::LevelShift,
        AnomalyKind::PatternDistortion,
    ] {
        let ts = labeled_series(kind, 3);
        let labels = ts.point_labels();
        let custom_pr = auc_pr(&custom.score(&ts.values), &labels);
        let custom_roc = auc_roc(&custom.score(&ts.values), &labels);
        // Best built-in model on this series.
        let mut best = ("-".to_string(), 0.0f64);
        for d in default_model_set(7) {
            let pr = auc_pr(&d.score(&ts.values), &labels);
            if pr > best.1 {
                best = (d.id().name().to_string(), pr);
            }
        }
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>9} {:.3}",
            kind.name(),
            custom_pr,
            custom_roc,
            best.0,
            best.1
        );
    }
    println!("\nA value-based detector handles spikes but not structural anomalies —");
    println!("which is exactly why model selection matters.");
}
